//! Integration coverage for the wire layer: every message variant must
//! round-trip through the public codec over real transport framing, and
//! malformed frames — truncated, oversized, garbage-tagged — must surface as
//! typed [`NetError::Decode`] values, never panics or silent drops.

use aggregate_core::{GossipMessage, InstanceTag};
use gossip_net::codec::{decode, encode, FRAME_LEN};
use gossip_net::{InMemoryNetwork, NetError, Transport};
use overlay_topology::NodeId;
use std::time::Duration;

/// One message of each variant for every interesting field shape: default
/// and leader-derived instance tags, epoch extremes, finite/subnormal/
/// non-finite payloads, and boundary node ids.
fn every_variant() -> Vec<GossipMessage> {
    let field_shapes = [
        (InstanceTag::DEFAULT, 0u64, 0.0f64),
        (InstanceTag::DEFAULT, 1, -0.0),
        (InstanceTag::from_leader(NodeId::new(7)), 42, 123.456),
        (
            InstanceTag::from_leader(NodeId::from_u32(u32::MAX)),
            u64::MAX,
            f64::MAX,
        ),
        (InstanceTag(u64::MAX), u64::MAX - 1, f64::MIN_POSITIVE),
        (InstanceTag(1), 9, f64::INFINITY),
        (InstanceTag(2), 10, f64::NEG_INFINITY),
        (InstanceTag(3), 11, f64::NAN),
    ];
    let mut messages = Vec::new();
    for (instance, epoch, value) in field_shapes {
        messages.push(GossipMessage::Push {
            from: NodeId::new(0),
            to: NodeId::from_u32(u32::MAX - 1),
            instance,
            epoch,
            value,
        });
        messages.push(GossipMessage::Reply {
            from: NodeId::from_u32(u32::MAX - 1),
            to: NodeId::new(0),
            instance,
            epoch,
            value,
        });
    }
    messages
}

#[test]
fn every_message_variant_round_trips_bit_exactly() {
    for message in every_variant() {
        let frame = encode(&message);
        assert_eq!(frame.len(), FRAME_LEN, "frames are fixed-size");
        let decoded = decode(&frame).expect("well-formed frame decodes");
        // NaN payloads compare unequal through PartialEq; the re-encoded
        // frame is the bit-exact witness for every payload.
        assert_eq!(
            encode(&decoded),
            frame,
            "round trip altered the frame for {message:?}"
        );
    }
}

/// The frame layout is a stability contract (documented as implementable
/// from other languages): pin the exact bytes of a known message.
#[test]
fn frame_layout_is_pinned() {
    let push = GossipMessage::Push {
        from: NodeId::new(1),
        to: NodeId::new(2),
        instance: InstanceTag(0x0102_0304_0506_0708),
        epoch: 0x1122_3344_5566_7788,
        value: 1.0,
    };
    let mut expected = vec![0u8]; // type tag: push
    expected.extend_from_slice(&1u32.to_be_bytes()); // from
    expected.extend_from_slice(&2u32.to_be_bytes()); // to
    expected.extend_from_slice(&0x0102_0304_0506_0708u64.to_be_bytes());
    expected.extend_from_slice(&0x1122_3344_5566_7788u64.to_be_bytes());
    expected.extend_from_slice(&1.0f64.to_bits().to_be_bytes());
    assert_eq!(encode(&push).to_vec(), expected);

    let reply = GossipMessage::Reply {
        from: NodeId::new(2),
        to: NodeId::new(1),
        instance: InstanceTag(0x0102_0304_0506_0708),
        epoch: 0x1122_3344_5566_7788,
        value: 1.0,
    };
    let mut reply_bytes = encode(&reply).to_vec();
    assert_eq!(reply_bytes[0], 1, "reply type tag");
    reply_bytes[0] = 0;
    // Beyond the tag, the layout is variant-independent — only from/to swap.
    assert_eq!(&reply_bytes[9..], &expected[9..]);
}

#[test]
fn truncated_frames_are_typed_decode_errors() {
    let frame = encode(&every_variant()[0]);
    for len in 0..FRAME_LEN {
        let err = decode(&frame[..len]).expect_err("truncation must fail");
        match err {
            NetError::Decode { reason } => {
                assert!(
                    reason.contains(&format!("got {len}")),
                    "reason should name the bad length: {reason}"
                );
            }
            other => panic!("truncated frame produced {other:?}, not Decode"),
        }
    }
}

#[test]
fn oversized_frames_are_typed_decode_errors() {
    let mut oversized = encode(&every_variant()[0]).to_vec();
    oversized.push(0);
    for extra in [1usize, 7, FRAME_LEN, 1024] {
        let mut frame = oversized.clone();
        frame.resize(FRAME_LEN + extra, 0xA5);
        let err = decode(&frame).expect_err("oversized frame must fail");
        assert!(
            matches!(err, NetError::Decode { .. }),
            "oversized frame produced {err:?}, not Decode"
        );
    }
}

#[test]
fn unknown_type_tags_are_typed_decode_errors() {
    let mut frame = encode(&every_variant()[0]).to_vec();
    for tag in [2u8, 3, 0x7F, 0xFF] {
        frame[0] = tag;
        match decode(&frame).expect_err("unknown tag must fail") {
            NetError::Decode { reason } => {
                assert!(reason.contains("unknown message type"), "reason: {reason}");
            }
            other => panic!("bad tag produced {other:?}, not Decode"),
        }
    }
}

/// Every variant survives the full transport hop — encoded on send, framed
/// through the channel, decoded on receive — bit-exactly. This is the same
/// byte path the UDP transport ships.
#[test]
fn every_variant_crosses_the_in_memory_transport_bit_exactly() {
    let endpoints = InMemoryNetwork::create(2);
    for message in every_variant() {
        // Rewrite the endpoints so routing targets endpoint 1.
        let routed = match message {
            GossipMessage::Push {
                instance,
                epoch,
                value,
                ..
            } => GossipMessage::Push {
                from: NodeId::new(0),
                to: NodeId::new(1),
                instance,
                epoch,
                value,
            },
            GossipMessage::Reply {
                instance,
                epoch,
                value,
                ..
            } => GossipMessage::Reply {
                from: NodeId::new(0),
                to: NodeId::new(1),
                instance,
                epoch,
                value,
            },
        };
        endpoints[0].send(&routed).expect("send succeeds");
        let received = endpoints[1]
            .recv_timeout(Duration::from_millis(100))
            .expect("decode succeeds")
            .expect("frame was delivered");
        assert_eq!(encode(&received), encode(&routed), "{routed:?}");
    }
}
