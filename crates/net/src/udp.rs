//! UDP transport.

use crate::{codec, NetError, Transport};
use aggregate_core::GossipMessage;
use overlay_topology::NodeId;
use parking_lot::Mutex;
use std::collections::HashMap; // lint-allow(nondeterminism): keyed lookup only; peers() sorts before iterating
use std::net::{SocketAddr, UdpSocket};
use std::time::Duration;

/// A UDP-based transport endpoint: one socket per node plus a static address
/// book mapping node identifiers to socket addresses.
///
/// Gossip messages fit in a single 33-byte datagram ([`codec::FRAME_LEN`]), so
/// there is no framing or fragmentation to deal with; datagram loss simply
/// looks like the message-loss failure mode the protocol already tolerates.
///
/// # Example
///
/// ```no_run
/// use gossip_net::UdpTransport;
/// use overlay_topology::NodeId;
///
/// // Bind node 0 on a local port and tell it where node 1 lives.
/// let peers = vec![(NodeId::new(1), "127.0.0.1:4101".parse().unwrap())];
/// let transport = UdpTransport::bind(NodeId::new(0), "127.0.0.1:4100".parse().unwrap(), peers)?;
/// # Ok::<(), gossip_net::NetError>(())
/// ```
#[derive(Debug)]
pub struct UdpTransport {
    id: NodeId,
    socket: UdpSocket,
    // lint-allow(nondeterminism): address book is looked up by key; peers() sorts its keys
    address_book: HashMap<u32, SocketAddr>,
    // Nanoseconds of the read timeout currently programmed into the socket
    // (0 = nothing cached). Receive loops call recv_timeout with the same
    // duration over and over; caching it saves one setsockopt syscall per
    // receive. The mutex keeps the transport `Sync` and is held across the
    // setsockopt so cache and socket can never disagree under concurrency.
    read_timeout_nanos: Mutex<u64>,
}

impl UdpTransport {
    /// Binds a UDP socket for `id` on `local_address` and registers the peer
    /// address book.
    ///
    /// # Errors
    ///
    /// Returns an error when the socket cannot be bound.
    pub fn bind(
        id: NodeId,
        local_address: SocketAddr,
        peers: Vec<(NodeId, SocketAddr)>,
    ) -> Result<Self, NetError> {
        let socket = UdpSocket::bind(local_address)?;
        Ok(UdpTransport {
            id,
            socket,
            address_book: peers
                .into_iter()
                .map(|(node, addr)| (node.as_u32(), addr))
                .collect(),
            read_timeout_nanos: Mutex::new(0),
        })
    }

    /// The local socket address this transport is bound to (useful when
    /// binding to port 0 and letting the OS pick).
    ///
    /// # Errors
    ///
    /// Propagates the underlying socket error.
    pub fn local_address(&self) -> Result<SocketAddr, NetError> {
        Ok(self.socket.local_addr()?)
    }

    /// Adds or updates one entry of the address book.
    pub fn register_peer(&mut self, node: NodeId, address: SocketAddr) {
        self.address_book.insert(node.as_u32(), address);
    }
}

impl Transport for UdpTransport {
    fn local_node(&self) -> NodeId {
        self.id
    }

    fn peers(&self) -> Vec<NodeId> {
        let mut peers: Vec<NodeId> = self
            .address_book
            .keys()
            .map(|&raw| NodeId::from_u32(raw))
            .filter(|&node| node != self.id)
            .collect();
        peers.sort();
        peers
    }

    fn send(&self, message: &GossipMessage) -> Result<(), NetError> {
        let to = message.recipient();
        let address = self
            .address_book
            .get(&to.as_u32())
            .ok_or(NetError::UnknownPeer { peer: to.as_u32() })?;
        let frame = codec::encode(message);
        self.socket.send_to(&frame, address)?;
        Ok(())
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<GossipMessage>, NetError> {
        // Only touch the socket option when the requested timeout changed.
        // Timeouts that don't fit the cache key (0, or ≥ ~584 years) always
        // take the syscall path, preserving the socket's error behaviour.
        {
            let key = u64::try_from(timeout.as_nanos()).unwrap_or(0);
            let mut cached = self.read_timeout_nanos.lock();
            if key == 0 || *cached != key {
                self.socket.set_read_timeout(Some(timeout))?;
                *cached = key;
            }
        }
        let mut buffer = [0u8; codec::FRAME_LEN];
        match self.socket.recv_from(&mut buffer) {
            Ok((len, _from)) => Ok(Some(codec::decode(&buffer[..len])?)),
            Err(err)
                if err.kind() == std::io::ErrorKind::WouldBlock
                    || err.kind() == std::io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(err) => Err(NetError::Io(err)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggregate_core::InstanceTag;

    fn localhost(port: u16) -> SocketAddr {
        SocketAddr::from(([127, 0, 0, 1], port))
    }

    fn bind_pair() -> (UdpTransport, UdpTransport) {
        // Bind with port 0 (OS-assigned), then exchange the real addresses.
        let mut a = UdpTransport::bind(NodeId::new(0), localhost(0), vec![]).unwrap();
        let mut b = UdpTransport::bind(NodeId::new(1), localhost(0), vec![]).unwrap();
        let addr_a = a.local_address().unwrap();
        let addr_b = b.local_address().unwrap();
        a.register_peer(NodeId::new(1), addr_b);
        b.register_peer(NodeId::new(0), addr_a);
        (a, b)
    }

    #[test]
    fn push_pull_round_trip_over_udp() {
        let (a, b) = bind_pair();
        let push = GossipMessage::Push {
            from: NodeId::new(0),
            to: NodeId::new(1),
            instance: InstanceTag::DEFAULT,
            epoch: 3,
            value: 12.5,
        };
        a.send(&push).unwrap();
        let received = b
            .recv_timeout(Duration::from_millis(500))
            .unwrap()
            .expect("datagram should arrive on loopback");
        assert_eq!(received, push);

        let reply = GossipMessage::Reply {
            from: NodeId::new(1),
            to: NodeId::new(0),
            instance: InstanceTag::DEFAULT,
            epoch: 3,
            value: -1.0,
        };
        b.send(&reply).unwrap();
        assert_eq!(
            a.recv_timeout(Duration::from_millis(500)).unwrap(),
            Some(reply)
        );
    }

    #[test]
    fn timeout_returns_none_and_unknown_peer_is_an_error() {
        let (a, _b) = bind_pair();
        assert_eq!(a.recv_timeout(Duration::from_millis(10)).unwrap(), None);
        let to_unknown = GossipMessage::Push {
            from: NodeId::new(0),
            to: NodeId::new(9),
            instance: InstanceTag::DEFAULT,
            epoch: 0,
            value: 0.0,
        };
        assert!(matches!(
            a.send(&to_unknown).unwrap_err(),
            NetError::UnknownPeer { peer: 9 }
        ));
    }

    #[test]
    fn cached_read_timeout_still_honours_repeated_and_changed_timeouts() {
        let (a, b) = bind_pair();
        // Same timeout over and over: only the first receive pays the
        // setsockopt; the cached path must still time out correctly.
        for _ in 0..3 {
            assert_eq!(a.recv_timeout(Duration::from_millis(5)).unwrap(), None);
        }
        assert_eq!(
            *a.read_timeout_nanos.lock(),
            Duration::from_millis(5).as_nanos() as u64
        );
        // Changing the timeout reprograms the socket and still delivers.
        let push = GossipMessage::Push {
            from: NodeId::new(1),
            to: NodeId::new(0),
            instance: InstanceTag::DEFAULT,
            epoch: 1,
            value: 2.0,
        };
        b.send(&push).unwrap();
        assert_eq!(
            a.recv_timeout(Duration::from_millis(500)).unwrap(),
            Some(push)
        );
        assert_eq!(
            *a.read_timeout_nanos.lock(),
            Duration::from_millis(500).as_nanos() as u64
        );
        // The cache must not cost the transport its shared-reference
        // thread-safety.
        fn assert_sync<T: Sync>() {}
        assert_sync::<UdpTransport>();
    }

    #[test]
    fn peers_lists_the_address_book() {
        let (a, b) = bind_pair();
        assert_eq!(a.peers(), vec![NodeId::new(1)]);
        assert_eq!(b.peers(), vec![NodeId::new(0)]);
        assert_eq!(a.local_node(), NodeId::new(0));
    }
}
