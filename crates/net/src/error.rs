//! Error type for transports and the runtime.

use std::error::Error;
use std::fmt;

/// Errors reported by the networking layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum NetError {
    /// A message could not be decoded (wrong length, unknown type tag, …).
    Decode {
        /// Explanation of the decode failure.
        reason: String,
    },
    /// The destination node is not known to the transport.
    UnknownPeer {
        /// Index of the unknown peer.
        peer: u32,
    },
    /// The underlying I/O operation failed.
    Io(std::io::Error),
    /// The channel to a peer is closed (the peer's runtime has shut down).
    Disconnected,
    /// The runtime configuration was invalid.
    InvalidConfig {
        /// Explanation.
        reason: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Decode { reason } => write!(f, "failed to decode message: {reason}"),
            NetError::UnknownPeer { peer } => write!(f, "unknown peer node {peer}"),
            NetError::Io(err) => write!(f, "i/o error: {err}"),
            NetError::Disconnected => write!(f, "peer channel disconnected"),
            NetError::InvalidConfig { reason } => write!(f, "invalid runtime config: {reason}"),
        }
    }
}

impl Error for NetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NetError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(err: std::io::Error) -> Self {
        NetError::Io(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(NetError::Decode {
            reason: "too short".into()
        }
        .to_string()
        .contains("too short"));
        assert!(NetError::UnknownPeer { peer: 9 }.to_string().contains('9'));
        assert!(NetError::Disconnected.to_string().contains("disconnected"));
        assert!(NetError::InvalidConfig {
            reason: "zero cycle".into()
        }
        .to_string()
        .contains("zero cycle"));
        let io = NetError::from(std::io::Error::other("boom"));
        assert!(io.to_string().contains("boom"));
        assert!(std::error::Error::source(&io).is_some());
    }

    #[test]
    fn error_satisfies_std_bounds() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<NetError>();
    }
}
