//! The transport abstraction.

use crate::NetError;
use aggregate_core::GossipMessage;
use overlay_topology::NodeId;
use std::time::Duration;

/// A message carrier between nodes.
///
/// A transport instance belongs to exactly one node (its
/// [`Transport::local_node`]); it can send a [`GossipMessage`] to any peer it
/// knows and receive messages addressed to its node. Implementations must be
/// `Send` so a node's runtime thread can own its transport.
///
/// Two implementations ship with the crate:
///
/// * [`crate::InMemoryNetwork`] — crossbeam channels inside one process;
/// * [`crate::UdpTransport`] — UDP datagrams encoded with [`crate::codec`].
pub trait Transport: Send {
    /// The node this transport endpoint belongs to.
    fn local_node(&self) -> NodeId;

    /// The peers this transport can reach (the node's static neighbour set).
    fn peers(&self) -> Vec<NodeId>;

    /// Sends a message to its recipient.
    ///
    /// # Errors
    ///
    /// Returns an error if the recipient is unknown or the underlying channel
    /// or socket failed.
    fn send(&self, message: &GossipMessage) -> Result<(), NetError>;

    /// Waits up to `timeout` for the next message addressed to this node.
    ///
    /// Returns `Ok(None)` when the timeout elapsed without a message.
    ///
    /// # Errors
    ///
    /// Returns an error if the underlying channel or socket failed or an
    /// undecodable frame arrived.
    fn recv_timeout(&self, timeout: Duration) -> Result<Option<GossipMessage>, NetError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transport_trait_is_object_safe() {
        fn _takes_boxed(_t: Box<dyn Transport>) {}
    }
}
