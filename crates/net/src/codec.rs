//! Binary wire format for gossip messages.
//!
//! Each message is a fixed 33-byte frame:
//!
//! | bytes | field |
//! |---|---|
//! | 1 | message type: `0` = push, `1` = reply |
//! | 4 | sender node id (big-endian u32) |
//! | 4 | recipient node id (big-endian u32) |
//! | 8 | instance tag (big-endian u64) |
//! | 8 | epoch (big-endian u64) |
//! | 8 | estimate value (IEEE-754 bits, big-endian u64) |
//!
//! The format is intentionally explicit (no serde) so that the byte layout is
//! stable across versions and trivially implementable by other languages.

use crate::NetError;
use aggregate_core::{GossipMessage, InstanceTag};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use overlay_topology::NodeId;

/// Exact size of an encoded message in bytes.
pub const FRAME_LEN: usize = 33;

const TYPE_PUSH: u8 = 0;
const TYPE_REPLY: u8 = 1;

/// Encodes a message into its 33-byte frame.
pub fn encode(message: &GossipMessage) -> Bytes {
    let mut buf = BytesMut::with_capacity(FRAME_LEN);
    let (tag, from, to, instance, epoch, value) = match *message {
        GossipMessage::Push {
            from,
            to,
            instance,
            epoch,
            value,
        } => (TYPE_PUSH, from, to, instance, epoch, value),
        GossipMessage::Reply {
            from,
            to,
            instance,
            epoch,
            value,
        } => (TYPE_REPLY, from, to, instance, epoch, value),
    };
    buf.put_u8(tag);
    buf.put_u32(from.as_u32());
    buf.put_u32(to.as_u32());
    buf.put_u64(instance.0);
    buf.put_u64(epoch);
    buf.put_u64(value.to_bits());
    buf.freeze()
}

/// Decodes a 33-byte frame back into a message.
///
/// # Errors
///
/// Returns [`NetError::Decode`] when the frame has the wrong length or an
/// unknown type tag.
pub fn decode(frame: &[u8]) -> Result<GossipMessage, NetError> {
    if frame.len() != FRAME_LEN {
        return Err(NetError::Decode {
            reason: format!("expected {FRAME_LEN} bytes, got {}", frame.len()),
        });
    }
    let mut buf = frame;
    let tag = buf.get_u8();
    let from = NodeId::from_u32(buf.get_u32());
    let to = NodeId::from_u32(buf.get_u32());
    let instance = InstanceTag(buf.get_u64());
    let epoch = buf.get_u64();
    let value = f64::from_bits(buf.get_u64());
    match tag {
        TYPE_PUSH => Ok(GossipMessage::Push {
            from,
            to,
            instance,
            epoch,
            value,
        }),
        TYPE_REPLY => Ok(GossipMessage::Reply {
            from,
            to,
            instance,
            epoch,
            value,
        }),
        other => Err(NetError::Decode {
            reason: format!("unknown message type tag {other}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn push(value: f64) -> GossipMessage {
        GossipMessage::Push {
            from: NodeId::new(3),
            to: NodeId::new(8),
            instance: InstanceTag(42),
            epoch: 7,
            value,
        }
    }

    #[test]
    fn frame_length_is_fixed() {
        assert_eq!(encode(&push(1.5)).len(), FRAME_LEN);
        let reply = GossipMessage::Reply {
            from: NodeId::new(8),
            to: NodeId::new(3),
            instance: InstanceTag(42),
            epoch: 7,
            value: -2.5,
        };
        assert_eq!(encode(&reply).len(), FRAME_LEN);
    }

    #[test]
    fn round_trip_push_and_reply() {
        let original = push(123.456);
        assert_eq!(decode(&encode(&original)).unwrap(), original);
        let reply = GossipMessage::Reply {
            from: NodeId::new(1),
            to: NodeId::new(2),
            instance: InstanceTag::DEFAULT,
            epoch: 0,
            value: f64::MIN_POSITIVE,
        };
        assert_eq!(decode(&encode(&reply)).unwrap(), reply);
    }

    #[test]
    fn special_float_values_survive_the_round_trip() {
        for value in [
            0.0,
            -0.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MAX,
            1e-308,
        ] {
            let decoded = decode(&encode(&push(value))).unwrap();
            match decoded {
                GossipMessage::Push { value: v, .. } => {
                    assert_eq!(v.to_bits(), value.to_bits());
                }
                _ => panic!("wrong variant"),
            }
        }
    }

    #[test]
    fn invalid_frames_are_rejected() {
        assert!(decode(&[]).is_err());
        assert!(decode(&[0u8; FRAME_LEN - 1]).is_err());
        assert!(decode(&[0u8; FRAME_LEN + 1]).is_err());
        let mut bad_tag = encode(&push(1.0)).to_vec();
        bad_tag[0] = 9;
        let err = decode(&bad_tag).unwrap_err();
        assert!(err.to_string().contains("unknown message type"));
    }

    /// Seeded property sweep (a plain loop rather than the vendored proptest,
    /// so NaN payloads and raw-frame fuzzing can be expressed directly): every
    /// representable message survives an encode/decode round trip, including
    /// the size-estimation shape (leader-derived instance tags) and the
    /// epoch-restart shape (large, unequal epochs).
    #[test]
    fn prop_round_trip_random_messages() {
        let mut rng = StdRng::seed_from_u64(0xC0DEC);
        for case in 0..10_000 {
            let from = NodeId::from_u32(rng.gen::<u32>());
            let to = NodeId::from_u32(rng.gen::<u32>());
            // Alternate plain tags with the leader-derived tags the network
            // size estimator stamps on its concurrent instances.
            let instance = if case % 3 == 0 {
                InstanceTag::from_leader(NodeId::from_u32(rng.gen::<u32>()))
            } else {
                InstanceTag(rng.gen::<u64>())
            };
            let epoch: u64 = rng.gen();
            let value = f64::from_bits(rng.gen::<u64>());
            let msg = if rng.gen_bool(0.5) {
                GossipMessage::Push {
                    from,
                    to,
                    instance,
                    epoch,
                    value,
                }
            } else {
                GossipMessage::Reply {
                    from,
                    to,
                    instance,
                    epoch,
                    value,
                }
            };
            let decoded = decode(&encode(&msg)).unwrap();
            // NaN payloads round-trip bit-exactly but compare unequal through
            // PartialEq, so compare the re-encoded frames instead.
            assert_eq!(
                encode(&decoded).to_vec(),
                encode(&msg).to_vec(),
                "case {case}: round trip altered the frame"
            );
            if !value.is_nan() {
                assert_eq!(decoded, msg, "case {case}");
            }
        }
    }

    /// Malformed input never panics: decode returns `NetError` for every
    /// length and for random garbage of the right length with a bad tag.
    #[test]
    fn prop_malformed_frames_return_errors_not_panics() {
        // Every wrong length up to twice the frame size.
        for len in (0..2 * FRAME_LEN).filter(|&l| l != FRAME_LEN) {
            let frame = vec![0xA5u8; len];
            assert!(decode(&frame).is_err(), "length {len} must be rejected");
        }
        // Right length, fuzzed contents: decode must either succeed (tag 0/1)
        // or return a NetError — never panic.
        let mut rng = StdRng::seed_from_u64(0xBAD_F00D);
        for _ in 0..10_000 {
            let mut frame = [0u8; FRAME_LEN];
            for byte in &mut frame {
                *byte = rng.gen::<u8>();
            }
            match decode(&frame) {
                Ok(_) => assert!(frame[0] <= 1, "tag {} accepted", frame[0]),
                Err(err) => {
                    assert!(
                        err.to_string().contains("unknown message type"),
                        "unexpected error for full-length frame: {err}"
                    );
                }
            }
        }
    }
}
