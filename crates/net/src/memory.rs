//! In-process transport backed by crossbeam channels.

use crate::{codec, NetError, Transport};
use aggregate_core::GossipMessage;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use overlay_topology::NodeId;
use std::collections::HashMap; // lint-allow(nondeterminism): keyed lookup only; peers() sorts before iterating
use std::time::Duration;

/// A single-process "network": one channel pair per node, with every endpoint
/// holding senders to all other endpoints.
///
/// The channels carry *encoded wire frames* ([`codec::encode`] on send,
/// [`codec::decode`] on receive), not in-process message structs, so every
/// message that crosses this transport exercises exactly the byte path the
/// UDP transport ships — which is what lets the deterministic in-memory
/// cluster pin the live wire format against the cycle engine bit-for-bit.
///
/// Used by unit/integration tests, by the quickstart example and as the
/// reference implementation against which the UDP transport is tested.
///
/// # Example
///
/// ```
/// use gossip_net::{InMemoryNetwork, Transport};
/// use aggregate_core::{GossipMessage, InstanceTag};
/// use overlay_topology::NodeId;
/// use std::time::Duration;
///
/// let endpoints = InMemoryNetwork::create(2);
/// let push = GossipMessage::Push {
///     from: NodeId::new(0),
///     to: NodeId::new(1),
///     instance: InstanceTag::DEFAULT,
///     epoch: 0,
///     value: 1.0,
/// };
/// endpoints[0].send(&push).unwrap();
/// let received = endpoints[1].recv_timeout(Duration::from_millis(50)).unwrap();
/// assert_eq!(received, Some(push));
/// ```
#[derive(Debug)]
pub struct InMemoryNetwork {
    id: NodeId,
    inbox: Receiver<Bytes>,
    // lint-allow(nondeterminism): outboxes are looked up by key; peers() sorts its keys
    outboxes: HashMap<u32, Sender<Bytes>>,
}

impl InMemoryNetwork {
    /// Creates a fully connected in-memory network of `n` endpoints.
    pub fn create(n: usize) -> Vec<InMemoryNetwork> {
        let channels: Vec<(Sender<Bytes>, Receiver<Bytes>)> = (0..n).map(|_| unbounded()).collect();
        (0..n)
            .map(|i| {
                let outboxes = channels
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(j, (tx, _))| (j as u32, tx.clone()))
                    .collect();
                InMemoryNetwork {
                    id: NodeId::new(i),
                    inbox: channels[i].1.clone(),
                    outboxes,
                }
            })
            .collect()
    }
}

impl Transport for InMemoryNetwork {
    fn local_node(&self) -> NodeId {
        self.id
    }

    fn peers(&self) -> Vec<NodeId> {
        let mut peers: Vec<NodeId> = self
            .outboxes
            .keys()
            .map(|&raw| NodeId::from_u32(raw))
            .collect();
        peers.sort();
        peers
    }

    fn send(&self, message: &GossipMessage) -> Result<(), NetError> {
        let to = message.recipient();
        let sender = self
            .outboxes
            .get(&to.as_u32())
            .ok_or(NetError::UnknownPeer { peer: to.as_u32() })?;
        sender
            .send(codec::encode(message))
            .map_err(|_| NetError::Disconnected)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<GossipMessage>, NetError> {
        match self.inbox.recv_timeout(timeout) {
            Ok(frame) => codec::decode(&frame).map(Some),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => Ok(None),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => Err(NetError::Disconnected),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggregate_core::InstanceTag;

    fn push(from: usize, to: usize, value: f64) -> GossipMessage {
        GossipMessage::Push {
            from: NodeId::new(from),
            to: NodeId::new(to),
            instance: InstanceTag::DEFAULT,
            epoch: 0,
            value,
        }
    }

    #[test]
    fn endpoints_know_their_identity_and_peers() {
        let endpoints = InMemoryNetwork::create(3);
        assert_eq!(endpoints[1].local_node(), NodeId::new(1));
        assert_eq!(endpoints[1].peers(), vec![NodeId::new(0), NodeId::new(2)]);
    }

    #[test]
    fn messages_are_routed_to_the_right_endpoint() {
        let endpoints = InMemoryNetwork::create(3);
        endpoints[0].send(&push(0, 2, 7.0)).unwrap();
        endpoints[1].send(&push(1, 2, 8.0)).unwrap();
        let timeout = Duration::from_millis(100);
        let first = endpoints[2].recv_timeout(timeout).unwrap().unwrap();
        let second = endpoints[2].recv_timeout(timeout).unwrap().unwrap();
        let values: Vec<f64> = [first, second]
            .iter()
            .map(|m| match m {
                GossipMessage::Push { value, .. } => *value,
                GossipMessage::Reply { value, .. } => *value,
            })
            .collect();
        assert!(values.contains(&7.0) && values.contains(&8.0));
        // Nothing was delivered to endpoint 1.
        assert_eq!(
            endpoints[1]
                .recv_timeout(Duration::from_millis(10))
                .unwrap(),
            None
        );
    }

    #[test]
    fn sending_to_unknown_or_self_is_an_error() {
        let endpoints = InMemoryNetwork::create(2);
        let err = endpoints[0].send(&push(0, 5, 1.0)).unwrap_err();
        assert!(matches!(err, NetError::UnknownPeer { peer: 5 }));
        // Self-sends are also unknown (no loopback channel).
        let err = endpoints[0].send(&push(0, 0, 1.0)).unwrap_err();
        assert!(matches!(err, NetError::UnknownPeer { peer: 0 }));
    }

    #[test]
    fn messages_cross_the_wire_codec_bit_exactly() {
        // The channels carry encoded frames; any f64 payload — including
        // non-finite ones — must survive the encode/decode hop bit-for-bit.
        let endpoints = InMemoryNetwork::create(2);
        for value in [1.5, -0.0, f64::NAN, f64::INFINITY, f64::MIN_POSITIVE] {
            endpoints[0].send(&push(0, 1, value)).unwrap();
            let received = endpoints[1]
                .recv_timeout(Duration::from_millis(50))
                .unwrap()
                .unwrap();
            let GossipMessage::Push {
                value: received_value,
                ..
            } = received
            else {
                panic!("expected a push");
            };
            assert_eq!(received_value.to_bits(), value.to_bits());
        }
    }

    #[test]
    fn recv_timeout_returns_none_when_idle() {
        let endpoints = InMemoryNetwork::create(2);
        assert_eq!(
            endpoints[0].recv_timeout(Duration::from_millis(5)).unwrap(),
            None
        );
    }
}
