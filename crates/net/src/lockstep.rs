//! The deterministic in-memory runtime: [`VirtualCluster`] steps a whole
//! gossip network through the *wire* message path under virtual time.
//!
//! This is the second binding of the "one core, two runtimes" design. The
//! node stepping is the same [`NodeCore`] the threaded [`crate::GossipRuntime`]
//! drives, every message crosses an [`InMemoryNetwork`] endpoint (and is
//! therefore encoded and decoded through the 33-byte wire codec), time is a
//! [`VirtualClock`] advanced one Δt per cycle, and all randomness comes from
//! the labelled [`SeedSequence`] streams of one master seed.
//!
//! The cluster executes cycles in *lockstep*, mirroring
//! [`gossip_sim::GossipSimulation`] draw for draw: same schedule shuffle,
//! same sampler streams, same fault-injection streams, same loss-coin order
//! inside each exchange. A seeded run is therefore not merely deterministic
//! — it is **bit-identical** to the cycle engine for the same seed,
//! membership and topology, which `tests/determinism.rs` pins. That identity
//! is the strongest statement this repository can make that the deployed
//! message path and the simulated one realise the same protocol.

use crate::node_core::{Delivery, NodeCore};
use crate::{InMemoryNetwork, Transport};
use aggregate_core::aggregate::CountInit;
use aggregate_core::effects::{Clock, SeedSequence, VirtualClock};
use aggregate_core::node::ProtocolNode;
use aggregate_core::redundancy::redundant_size_estimate_from_epoch;
use aggregate_core::sampler::{sample_live_peer, PeerSampler, SamplerConfig, SamplerDirectory};
use aggregate_core::{size_estimation, ExchangeTally, GossipMessage, InstanceTag};
use gossip_analysis::OnlineStats;
use gossip_faults::{Adversary, AdversaryPlan, FaultInjector, FaultPlan, PlanInjector};
use gossip_sim::sampling::{ADVERSARY_STREAM, FAULTS_STREAM, REDUNDANCY_STREAM};
use gossip_sim::{instantiate_sampler, CycleSummary, SimConfigError, SimulationConfig};
use gossip_telemetry::{Event, TelemetryConfig, TelemetrySink};
use overlay_topology::NodeId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use std::time::Duration;

/// Sentinel for "slot is not live" in the slot → live-position map (the same
/// convention as the engine arena's internal map).
const NOT_LIVE: u32 = u32::MAX;

/// The live directory the peer sampler draws from: positions enumerate the
/// dense live array, liveness is an O(1) map lookup. Mirrors the engine's
/// `ArenaDirectory` exactly (same ordering, same answers); the generation
/// check is unnecessary here because a [`VirtualCluster`] never rejoins a
/// vacated slot, so every identifier in circulation is generation 0.
#[derive(Debug, Clone, Copy)]
struct LiveDirectory<'a> {
    live: &'a [u32],
    live_pos: &'a [u32],
}

impl SamplerDirectory for LiveDirectory<'_> {
    fn len(&self) -> usize {
        self.live.len()
    }

    fn id_at(&self, pos: usize) -> NodeId {
        NodeId::from_u32(self.live[pos])
    }

    fn is_live(&self, id: NodeId) -> bool {
        let slot = id.as_u32() as usize;
        slot < self.live_pos.len() && self.live_pos[slot] != NOT_LIVE
    }
}

/// A whole gossip network run deterministically inside one thread: real
/// [`NodeCore`] state machines, real wire frames over [`InMemoryNetwork`]
/// endpoints, virtual time — stepped one cycle at a time in lockstep with
/// the reference engine's schedule.
///
/// Takes the *same* [`SimulationConfig`] (and optionally the same
/// [`FaultPlan`]) as [`gossip_sim::GossipSimulation`] and produces the same
/// [`CycleSummary`] values, bit for bit. No joins are supported (the live
/// runtime has a static bootstrap membership); crash bursts from the fault
/// plan remove nodes exactly as the engine's churn path does.
///
/// # Example
///
/// ```
/// use gossip_net::VirtualCluster;
/// use gossip_sim::{GossipSimulation, SimulationConfig};
/// use aggregate_core::ProtocolConfig;
///
/// let config = SimulationConfig::averaging(ProtocolConfig::default());
/// let values: Vec<f64> = (0..50).map(|i| i as f64).collect();
/// let mut wire = VirtualCluster::new(config, &values, 7).unwrap();
/// let mut engine = GossipSimulation::new(config, &values, 7);
/// // The wire runtime and the cycle engine take identical trajectories.
/// assert_eq!(wire.run(5), engine.run(5));
/// ```
#[derive(Debug)]
pub struct VirtualCluster {
    config: SimulationConfig,
    /// Slot-indexed node state; `None` marks a crashed node's vacated slot.
    nodes: Vec<Option<NodeCore>>,
    /// Wire endpoints, slot-indexed and immortal (a crashed node simply
    /// stops being scheduled; frames addressed to it are never sent because
    /// the sampler only returns live peers).
    endpoints: Vec<InMemoryNetwork>,
    /// Dense array of live slot indices, in engine live order.
    live: Vec<u32>,
    /// Slot → position in `live`, [`NOT_LIVE`] for vacated slots.
    live_pos: Vec<u32>,
    cycle: usize,
    clock: VirtualClock,
    rng: StdRng,
    sampler: Box<dyn PeerSampler + Send>,
    injector: Box<dyn FaultInjector + Send>,
    /// The stateful adversary, mirroring the engine's: colluders re-assert
    /// lies each cycle, captured leaders re-assert false instance states.
    adversary: Adversary,
    /// Master seed streams, kept for the per-epoch redundant leader draws.
    seeds: SeedSequence,
    /// Monotone counter keying the `redundancy-leaders` draws, in lockstep
    /// with the engine's.
    elections: u64,
    last_size_estimate: Option<f64>,
    scratch_pushes: Vec<GossipMessage>,
    /// The observability sink: same event schema as the cycle engines,
    /// timestamped from this cluster's virtual clock. Disabled by default;
    /// recording consumes no randomness, so enabling it never perturbs the
    /// wire-path trajectory.
    telemetry: TelemetrySink,
}

impl VirtualCluster {
    /// Creates a deterministic in-memory cluster with one node per initial
    /// value, all present from epoch 0, fault-free.
    ///
    /// # Errors
    ///
    /// Everything [`gossip_sim::GossipSimulation::try_new`] rejects: an empty
    /// population, non-finite initial values, invalid failure conditions,
    /// unrealisable sampler configurations.
    pub fn new(
        config: SimulationConfig,
        initial_values: &[f64],
        master_seed: u64,
    ) -> Result<Self, SimConfigError> {
        VirtualCluster::with_faults(config, initial_values, master_seed, FaultPlan::none())
    }

    /// Creates the cluster executing the given [`FaultPlan`] (with the
    /// configuration's conditions absorbed underneath), exactly as
    /// [`gossip_sim::GossipSimulation::with_faults`] does.
    ///
    /// # Errors
    ///
    /// Everything [`VirtualCluster::new`] rejects, plus
    /// [`SimConfigError::Faults`] for a malformed schedule.
    pub fn with_faults(
        config: SimulationConfig,
        initial_values: &[f64],
        master_seed: u64,
        plan: FaultPlan,
    ) -> Result<Self, SimConfigError> {
        VirtualCluster::with_adversary(
            config,
            initial_values,
            master_seed,
            plan,
            AdversaryPlan::none(),
        )
    }

    /// Creates the cluster executing a [`FaultPlan`] and a stateful
    /// [`AdversaryPlan`], exactly as
    /// [`gossip_sim::GossipSimulation::with_adversary`] does — the wire-path
    /// binding of the Byzantine adversary lab.
    ///
    /// # Errors
    ///
    /// Everything [`VirtualCluster::with_faults`] rejects, plus
    /// [`SimConfigError::Adversary`] for a malformed adversary plan.
    pub fn with_adversary(
        config: SimulationConfig,
        initial_values: &[f64],
        master_seed: u64,
        plan: FaultPlan,
        adversary_plan: AdversaryPlan,
    ) -> Result<Self, SimConfigError> {
        config.validate(initial_values)?;
        let plan = plan.absorb_conditions(config.conditions);
        plan.validate()?;
        adversary_plan.validate()?;
        let n = initial_values.len();
        let nodes: Vec<Option<NodeCore>> = initial_values
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                Some(NodeCore::new(ProtocolNode::new(
                    NodeId::new(i),
                    config.protocol,
                    v,
                )))
            })
            .collect();
        let initial_ids: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        let seeds = SeedSequence::new(master_seed);
        let sampler = instantiate_sampler(config.sampler, &initial_ids, &seeds)?;
        let injector = Box::new(PlanInjector::new(
            plan,
            seeds.seed_for_labeled(0, FAULTS_STREAM),
        ));
        let adversary = Adversary::new(
            adversary_plan,
            seeds.seed_for_labeled(0, ADVERSARY_STREAM),
            &initial_ids,
        );
        let mut cluster = VirtualCluster {
            config,
            nodes,
            endpoints: InMemoryNetwork::create(n),
            live: (0..n as u32).collect(),
            live_pos: (0..n as u32).collect(),
            cycle: 0,
            clock: VirtualClock::new(),
            rng: seeds.rng_for_run(0),
            sampler,
            injector,
            adversary,
            seeds,
            elections: 0,
            last_size_estimate: None,
            scratch_pushes: Vec::new(),
            telemetry: TelemetrySink::new(TelemetryConfig::disabled()),
        };
        cluster.elect_leaders();
        Ok(cluster)
    }

    /// Installs (or replaces) the telemetry sink. With
    /// [`TelemetryConfig::disabled`] — the construction default — every hook
    /// is a single branch and the run stays bit-identical to the reference
    /// engine's trajectory.
    pub fn set_telemetry(&mut self, config: TelemetryConfig) {
        self.telemetry = TelemetrySink::new(config);
        self.telemetry
            .begin_cycle(self.cycle as u64, self.clock.now_ms());
    }

    /// Drains the recorded events in canonical trace order.
    pub fn drain_trace(&mut self) -> Vec<Event> {
        self.telemetry.drain_events() // lint-allow(observer-effect): post-hoc export accessor for runners/tests, not protocol logic
    }

    /// The convergence watchdog's current verdict, if one is configured.
    pub fn watchdog_verdict(&self) -> Option<gossip_telemetry::WatchdogVerdict> {
        self.telemetry.watchdog_verdict() // lint-allow(observer-effect): post-hoc diagnosis accessor for runners/tests, not protocol logic
    }

    /// Every verdict transition the watchdog has diagnosed so far.
    pub fn watchdog_diagnoses(&self) -> &[gossip_telemetry::Diagnosis] {
        self.telemetry.diagnoses() // lint-allow(observer-effect): post-hoc diagnosis accessor for runners/tests, not protocol logic
    }

    /// The accumulated telemetry counters (post-hoc readout).
    pub fn telemetry_metrics(&self) -> &gossip_telemetry::MetricsRegistry {
        self.telemetry.metrics() // lint-allow(observer-effect): post-hoc metrics accessor for runners/tests, not protocol logic
    }

    /// The peer-sampling configuration partners are drawn from.
    pub fn sampler_config(&self) -> SamplerConfig {
        self.sampler.config()
    }

    /// The realised adversary (colluding set and per-epoch captures) — the
    /// cross-runtime tests inspect it to cross-check which nodes are lying.
    pub fn adversary(&self) -> &Adversary {
        &self.adversary
    }

    /// Number of live nodes.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// The current cycle index.
    pub fn cycle(&self) -> usize {
        self.cycle
    }

    /// The cluster's virtual time in milliseconds (one Δt per cycle run).
    pub fn now_ms(&self) -> u64 {
        self.clock.now_ms()
    }

    /// The most recent pooled network-size estimate, if any epoch completed.
    pub fn last_size_estimate(&self) -> Option<f64> {
        self.last_size_estimate
    }

    /// Current default-instance estimates of all live nodes, in live order.
    pub fn estimates(&self) -> Vec<f64> {
        self.live
            .iter()
            .filter_map(|&slot| self.nodes[slot as usize].as_ref())
            .filter_map(|core| core.estimate())
            .collect()
    }

    /// Runs one full protocol cycle over the wire path and returns the same
    /// summary the reference engine produces for this cycle.
    pub fn run_cycle(&mut self) -> CycleSummary {
        let mut tally = ExchangeTally::default();
        let mut exchanges_blocked = 0usize;

        // Fault lab first, exactly as the engine orders it: enter the cycle,
        // fire scheduled crash bursts through the churn path, apply
        // adversarial corruptions, then cache the loss rate.
        self.injector.begin_cycle(self.cycle);
        let crash_victims = self.injector.crash_count(self.live.len());
        if crash_victims > 0 {
            self.remove_random_nodes(crash_victims);
        }
        // The stateful adversary next, exactly as the engine orders it:
        // colluders re-assert their lie at the start of every active cycle,
        // captured leaders re-assert the false state into their instances.
        // Pure — no RNG — so the empty plan stays bit-identical.
        if let Some(value) = self.adversary.lie_at(self.cycle) {
            let VirtualCluster {
                adversary,
                nodes,
                telemetry,
                ..
            } = self;
            let record = telemetry.events_enabled();
            for &id in adversary.colluders() {
                let slot = id.as_u32() as usize;
                if slot < nodes.len() {
                    if let Some(core) = nodes[slot].as_mut() {
                        core.corrupt_estimate(value);
                        if record {
                            telemetry.value_corrupted(u64::from(id.as_u32()));
                        }
                    }
                }
            }
        }
        if let Some(state) = self.adversary.captured_state_at(self.cycle) {
            for &id in self.adversary.captured() {
                let slot = id.as_u32() as usize;
                if slot < self.nodes.len() {
                    if let Some(core) = self.nodes[slot].as_mut() {
                        core.node_mut()
                            .corrupt_instance(InstanceTag::from_leader(id), state);
                    }
                }
            }
        }
        // One corruption per node per cycle: adversary lies win over the
        // one-shot ValueInjection (same rule as the engine).
        for (pos, value) in self.injector.corruptions(self.live.len()) {
            let slot = self.live[pos] as usize;
            let id = NodeId::from_u32(self.live[pos]);
            if self.adversary.overrides_injection(self.cycle, id) {
                continue;
            }
            if let Some(core) = self.nodes[slot].as_mut() {
                core.corrupt_estimate(value);
                if self.telemetry.events_enabled() {
                    self.telemetry.value_corrupted(u64::from(id.as_u32()));
                }
            }
        }
        let loss = self.injector.loss_probability();

        // Overlay maintenance in lockstep with the aggregation cycle.
        self.sampler.begin_cycle(&LiveDirectory {
            live: &self.live,
            live_pos: &self.live_pos,
        });

        // Active phase: every live node initiates one exchange, in the same
        // shuffled order the engine draws — but here each exchange travels
        // as encoded wire frames through the in-memory transport and is
        // stepped through `NodeCore` message delivery.
        let mut order = self.live.clone();
        order.shuffle(&mut self.rng);
        for initiator_slot in order {
            let slot = initiator_slot as usize;
            if self.nodes[slot].is_none() {
                continue;
            }
            let peer_id = {
                let directory = LiveDirectory {
                    live: &self.live,
                    live_pos: &self.live_pos,
                };
                let initiator_pos = self.live_pos[slot] as usize;
                sample_live_peer(
                    self.sampler.as_mut(),
                    &directory,
                    initiator_pos,
                    &mut self.rng,
                )
            };
            let Some(peer_id) = peer_id else {
                continue;
            };
            let initiator_id = NodeId::from_u32(initiator_slot);
            if self.injector.link_blocked(initiator_id, peer_id) {
                self.sampler.peer_failed(initiator_id, peer_id);
                exchanges_blocked += 1;
                if self.telemetry.events_enabled() {
                    self.telemetry.exchange_vetoed(
                        u64::from(initiator_id.as_u32()),
                        u64::from(peer_id.as_u32()),
                    );
                }
                continue;
            }
            let peer_slot = peer_id.as_u32() as usize;
            let mut pushes = std::mem::take(&mut self.scratch_pushes);
            let started = self.nodes[slot]
                .as_mut()
                // lint-allow(unwrap): slot liveness checked when the schedule entry was drawn
                .expect("checked above")
                .begin(peer_id, &mut pushes);
            if !started {
                self.scratch_pushes = pushes;
                continue;
            }
            tally.exchanges += 1;
            let seq = (tally.exchanges - 1) as u64;
            let lost_before = tally.messages_lost;
            if self.telemetry.events_enabled() {
                self.telemetry.exchange_begun(
                    seq,
                    u64::from(initiator_id.as_u32()),
                    u64::from(peer_id.as_u32()),
                );
            }
            // Ship each push over the wire, delivering at the peer as it
            // lands; the loss coins are drawn in the exact order the
            // engine's `ExchangeCore::respond` draws them — push, then (if a
            // reply was produced) reply, for each push in turn.
            for push in &pushes {
                if loss > 0.0 && self.rng.gen_bool(loss) {
                    tally.messages_lost += 1;
                    continue;
                }
                self.endpoints[slot]
                    .send(push)
                    // lint-allow(unwrap): every live slot owns an in-memory endpoint; send cannot fail
                    .expect("sampled peer has an endpoint");
                let message = self.endpoints[peer_slot]
                    .recv_timeout(Duration::ZERO)
                    // lint-allow(unwrap): frames cross an in-memory channel bit-exactly; decode cannot fail
                    .expect("in-memory frames always decode")
                    // lint-allow(unwrap): the push was enqueued by the send directly above
                    .expect("frame was just enqueued");
                // When no reply is owed (stale-epoch push, epoch jump) there
                // is nothing to ship back; a peer can never be mid-exchange
                // here — the lockstep schedule completes each exchange
                // before the next begins.
                if let Delivery::Reply(reply) = self.nodes[peer_slot]
                    .as_mut()
                    // lint-allow(unwrap): peer liveness checked when the exchange was scheduled
                    .expect("sampled peer is live")
                    .deliver(message)
                {
                    if loss > 0.0 && self.rng.gen_bool(loss) {
                        tally.messages_lost += 1;
                    } else {
                        self.endpoints[peer_slot]
                            .send(&reply)
                            // lint-allow(unwrap): every live slot owns an in-memory endpoint; send cannot fail
                            .expect("initiator has an endpoint");
                    }
                }
            }
            // Absorb whatever replies made it back, then settle the
            // exchange.
            while let Ok(Some(reply)) = self.endpoints[slot].recv_timeout(Duration::ZERO) {
                self.nodes[slot]
                    .as_mut()
                    // lint-allow(unwrap): slot liveness checked when the schedule entry was drawn
                    .expect("checked above")
                    .deliver(reply);
            }
            self.nodes[slot]
                .as_mut()
                // lint-allow(unwrap): slot liveness checked when the schedule entry was drawn
                .expect("checked above")
                .close_pending();
            if self.telemetry.events_enabled() {
                let lost_now = tally.messages_lost - lost_before;
                for _ in 0..lost_now {
                    self.telemetry.message_lost(seq);
                }
                if lost_now == 0 {
                    self.telemetry.exchange_completed(seq);
                }
            }
            self.scratch_pushes = pushes;
        }
        let ExchangeTally {
            exchanges,
            messages_lost,
        } = tally;

        // End-of-cycle phase: epoch book-keeping on every live node, in live
        // order, exactly as the engine does.
        let mut completed_epoch = None;
        let mut epoch_estimates = Vec::new();
        let mut epoch_size_estimates = Vec::new();
        for pos in 0..self.live.len() {
            let slot = self.live[pos] as usize;
            let Some(core) = self.nodes[slot].as_mut() else {
                continue;
            };
            if let Some(result) = core.end_cycle() {
                completed_epoch = Some(result.epoch);
                if result.full_participation {
                    if let Some(estimate) = result.default_estimate() {
                        epoch_estimates.push(estimate);
                    }
                    // The defended estimator merges per-instance estimates;
                    // the undefended one pools instance states by averaging
                    // (same selection as the engine).
                    let size = match self.config.redundancy {
                        Some(redundancy) => {
                            redundant_size_estimate_from_epoch(&result, redundancy.merge).ok()
                        }
                        None => size_estimation::size_estimate_from_epoch(&result),
                    };
                    if let Some(size) = size {
                        epoch_size_estimates.push(size);
                    }
                }
            }
        }

        if !epoch_size_estimates.is_empty() {
            let mean = epoch_size_estimates.iter().sum::<f64>() / epoch_size_estimates.len() as f64;
            self.last_size_estimate = Some(mean);
        }

        if let Some(epoch) = completed_epoch {
            if self.telemetry.events_enabled() {
                self.telemetry.epoch_restarted(epoch);
            }
            self.elect_leaders();
        }

        let mut stats = OnlineStats::new();
        for &slot in &self.live {
            if let Some(estimate) = self.nodes[slot as usize]
                .as_ref()
                .and_then(|core| core.estimate())
            {
                stats.push(estimate);
            }
        }

        let summary = CycleSummary {
            cycle: self.cycle,
            live_nodes: self.live.len(),
            exchanges,
            messages_lost,
            exchanges_blocked,
            estimate_variance: stats.sample_variance(),
            estimate_mean: stats.mean(),
            completed_epoch,
            epoch_estimates,
            epoch_size_estimates,
        };
        self.telemetry
            .observe_variance(self.cycle as u64, summary.estimate_variance);
        self.cycle += 1;
        self.clock.advance(self.config.protocol.cycle_length_ms());
        // Open the next cycle's recording context — inter-cycle churn lands
        // in that cycle's start band, mirroring the reference engine.
        self.telemetry
            .begin_cycle(self.cycle as u64, self.clock.now_ms());
        summary
    }

    /// Runs `cycles` consecutive cycles, returning all summaries.
    pub fn run(&mut self, cycles: usize) -> Vec<CycleSummary> {
        (0..cycles).map(|_| self.run_cycle()).collect()
    }

    /// Removes `count` uniformly random live nodes through the same draw
    /// sequence and swap-remove bookkeeping as the engine arena's churn
    /// path, so crash bursts leave both runtimes with identical live orders.
    fn remove_random_nodes(&mut self, count: usize) {
        for _ in 0..count {
            if self.live.is_empty() {
                break;
            }
            let position = self.rng.gen_range(0..self.live.len());
            let slot = self.live[position];
            let last = *self.live.last().expect("non-empty"); // lint-allow(unwrap): guarded by the is_empty break above
            self.live.swap_remove(position);
            if last != slot {
                self.live_pos[last as usize] = position as u32;
            }
            self.live_pos[slot as usize] = NOT_LIVE;
            self.nodes[slot as usize] = None;
            if self.telemetry.events_enabled() {
                self.telemetry.node_departed(u64::from(slot));
            }
            self.sampler.on_depart(NodeId::from_u32(slot));
        }
    }

    /// Re-runs the leader election for the counting instances, mirroring the
    /// engine (same iteration order, same RNG stream, same deterministic
    /// fallback leader, same redundant-election draws).
    fn elect_leaders(&mut self) {
        // A new epoch starts: whatever leaders the adversary captured last
        // epoch died with their instances.
        self.adversary.begin_epoch();
        if let Some(redundancy) = self.config.redundancy {
            self.elect_redundant_leaders(redundancy.instances);
            return;
        }
        let Some(policy) = self.config.leader_policy else {
            return;
        };
        let previous = self.last_size_estimate;
        let VirtualCluster {
            nodes,
            live,
            rng,
            adversary,
            telemetry,
            ..
        } = self;
        let record = telemetry.events_enabled();
        let mut any_leader = false;
        for &slot in live.iter() {
            if let Some(core) = nodes[slot as usize].as_mut() {
                if size_estimation::elect_leader(core.node_mut(), policy, previous, rng) {
                    any_leader = true;
                    adversary.observe_leader(core.id());
                    if record {
                        telemetry.leader_elected(u64::from(core.id().as_u32()));
                    }
                }
            }
        }
        if !any_leader {
            if let Some(&slot) = live.first() {
                if let Some(core) = nodes[slot as usize].as_mut() {
                    let tag = InstanceTag::from_leader(core.id());
                    core.node_mut().start_led_instance(tag, 1.0);
                    adversary.observe_leader(core.id());
                    if record {
                        telemetry.leader_elected(u64::from(core.id().as_u32()));
                    }
                }
            }
        }
    }

    /// The redundant-instance election, draw-for-draw identical to the
    /// engine's: a partial Fisher–Yates over the live directory from the
    /// `redundancy-leaders` stream, keyed by the same election counter.
    fn elect_redundant_leaders(&mut self, instances: usize) {
        let live_count = self.live.len();
        if live_count == 0 {
            return;
        }
        let k = instances.min(live_count);
        let mut rng = self
            .seeds
            .rng_for_labeled(self.elections, REDUNDANCY_STREAM);
        self.elections += 1;
        let mut positions: Vec<u32> = (0..live_count as u32).collect();
        for i in 0..k {
            let j = rng.gen_range(i..live_count);
            positions.swap(i, j);
        }
        for &pos in &positions[..k] {
            let slot = self.live[pos as usize] as usize;
            if let Some(core) = self.nodes[slot].as_mut() {
                let id = core.id();
                core.node_mut().start_led_instance(
                    InstanceTag::from_leader(id),
                    CountInit::initial_value(true),
                );
                self.adversary.observe_leader(id);
                if self.telemetry.events_enabled() {
                    self.telemetry.leader_elected(u64::from(id.as_u32()));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggregate_core::ProtocolConfig;
    use gossip_sim::GossipSimulation;

    fn averaging(cycles_per_epoch: u32) -> SimulationConfig {
        SimulationConfig::averaging(
            ProtocolConfig::builder()
                .cycles_per_epoch(cycles_per_epoch)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn wire_cluster_matches_the_engine_cycle_for_cycle() {
        let values: Vec<f64> = (0..120).map(|i| (i % 19) as f64).collect();
        let config = averaging(10);
        let mut wire = VirtualCluster::new(config, &values, 33).unwrap();
        let mut engine = GossipSimulation::new(config, &values, 33);
        for _ in 0..25 {
            assert_eq!(wire.run_cycle(), engine.run_cycle());
        }
        assert_eq!(wire.estimates(), engine.estimates());
    }

    #[test]
    fn virtual_time_advances_one_cycle_length_per_cycle() {
        let config = SimulationConfig::averaging(
            ProtocolConfig::builder()
                .cycles_per_epoch(10)
                .cycle_length_ms(2_000)
                .build()
                .unwrap(),
        );
        let mut cluster = VirtualCluster::new(config, &[1.0, 2.0, 3.0], 1).unwrap();
        assert_eq!(cluster.now_ms(), 0);
        cluster.run(4);
        assert_eq!(cluster.now_ms(), 8_000);
        assert_eq!(cluster.cycle(), 4);
    }

    #[test]
    fn rejects_what_the_engine_rejects() {
        let config = averaging(10);
        assert!(matches!(
            VirtualCluster::new(config, &[], 1).err(),
            Some(SimConfigError::ZeroNodes)
        ));
        assert!(matches!(
            VirtualCluster::new(config, &[1.0, f64::NAN], 1).err(),
            Some(SimConfigError::NonFiniteInitialValue { index: 1, .. })
        ));
        assert!(matches!(
            VirtualCluster::with_faults(config, &[1.0], 1, FaultPlan::with_link_failure(2.0)).err(),
            Some(SimConfigError::Faults { .. })
        ));
        let bad_sampler = SimulationConfig {
            sampler: SamplerConfig::Newscast { cache_size: 0 },
            ..config
        };
        assert!(matches!(
            VirtualCluster::new(bad_sampler, &[1.0, 2.0], 1).err(),
            Some(SimConfigError::Sampler { .. })
        ));
    }

    #[test]
    fn crash_bursts_mirror_the_engine_churn_path() {
        let values: Vec<f64> = (0..80).map(|i| i as f64).collect();
        let config = averaging(10);
        let plan = FaultPlan::with_crash_burst(3, 0.25);
        let mut wire = VirtualCluster::with_faults(config, &values, 9, plan.clone()).unwrap();
        let mut engine = GossipSimulation::with_faults(config, &values, 9, plan).unwrap();
        for _ in 0..8 {
            assert_eq!(wire.run_cycle(), engine.run_cycle());
        }
        assert_eq!(wire.live_count(), 60);
        assert_eq!(wire.live_count(), engine.live_count());
        assert_eq!(wire.estimates(), engine.estimates());
    }
}
