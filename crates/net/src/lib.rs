//! # gossip-net
//!
//! Deployment runtime for anti-entropy aggregation: pluggable transports, a
//! compact wire codec and a threaded per-node runtime.
//!
//! The protocol logic lives entirely in `aggregate-core`
//! ([`aggregate_core::node::ProtocolNode`] is transport-agnostic); this crate
//! supplies the missing pieces for running it outside a simulator:
//!
//! * [`codec`] — a small explicit binary encoding of [`aggregate_core::GossipMessage`]
//!   (33 bytes per message, no allocation on decode);
//! * [`Transport`] — the interface a message carrier must implement, with two
//!   implementations: [`InMemoryNetwork`] (crossbeam channels, for tests and
//!   single-process demos) and [`UdpTransport`] (UDP sockets, for LAN/localhost
//!   deployments);
//! * [`GossipRuntime`] — one OS thread per node driving the active cycle of
//!   Figure 1 (wait Δt → pick random peer → push–pull exchange) while serving
//!   incoming exchanges, with a shared handle for reading the current
//!   estimates.
//!
//! The calibration notes for this reproduction suggested `tokio` for the async
//! runtime; the offline dependency set for this workspace does not include it,
//! so the runtime uses plain threads — the `Transport` trait is deliberately
//! small so an async transport can be added without touching protocol code.
//!
//! ## Example
//!
//! ```
//! use gossip_net::{GossipCluster, ClusterConfig};
//!
//! // Five nodes holding 1..=5 gossip in-process for 30 cycles of 5 ms.
//! let config = ClusterConfig { cycle_length_ms: 5, cycles: 30 };
//! let estimates = GossipCluster::run_in_memory(&[1.0, 2.0, 3.0, 4.0, 5.0], config).unwrap();
//! // Every node's estimate has converged close to the true average 3.0
//! // (overlapping live exchanges leave a small residual error; the simulator
//! // in `gossip-sim` reproduces the exact, mass-conserving behaviour).
//! assert!(estimates.iter().all(|e| (e - 3.0).abs() < 1.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod codec;
mod error;
mod memory;
mod runtime;
mod transport;
mod udp;

pub use error::NetError;
pub use memory::InMemoryNetwork;
pub use runtime::{ClusterConfig, GossipCluster, GossipRuntime, NodeHandle};
pub use transport::Transport;
pub use udp::UdpTransport;
