//! # gossip-net
//!
//! Deployment runtime for anti-entropy aggregation: pluggable transports, a
//! compact wire codec and **one protocol core behind two runtimes**.
//!
//! The protocol logic lives entirely in `aggregate-core`
//! ([`aggregate_core::ExchangeCore`] is the only place exchange state
//! transitions happen); this crate supplies the pieces for running it
//! outside a simulator:
//!
//! * [`codec`] — a small explicit binary encoding of [`aggregate_core::GossipMessage`]
//!   (33 bytes per message, no allocation on decode);
//! * [`Transport`] — the interface a message carrier must implement, with two
//!   implementations: [`InMemoryNetwork`] (crossbeam channels carrying
//!   encoded wire frames, for tests and single-process demos) and
//!   [`UdpTransport`] (UDP sockets, for LAN/localhost deployments);
//! * [`NodeCore`] — the per-node protocol step both runtimes share: every
//!   message goes through [`aggregate_core::ExchangeCore`], and overlapping
//!   exchanges are rejected so the live message path conserves the
//!   network-wide sum;
//! * [`GossipRuntime`] — one OS thread per node driving the active cycle of
//!   Figure 1 (wait Δt → sample a peer → push–pull exchange) while serving
//!   incoming exchanges. Its environment is fully injected through
//!   [`NodeEnv`]: a [`aggregate_core::effects::Clock`], a seeded RNG, a
//!   [`aggregate_core::sampler::PeerSampler`], a
//!   [`gossip_faults::FaultInjector`] and the transport;
//! * [`VirtualCluster`] — the same node type and transport under a
//!   [`aggregate_core::effects::VirtualClock`] and labelled
//!   [`aggregate_core::effects::SeedSequence`] streams, stepped in lockstep:
//!   a seeded run is deterministic and **bit-identical** to
//!   [`gossip_sim::GossipSimulation`] for the same seed, membership and
//!   topology (pinned by `tests/determinism.rs`).
//!
//! The calibration notes for this reproduction suggested `tokio` for the async
//! runtime; the offline dependency set for this workspace does not include it,
//! so the runtime uses plain threads — the `Transport` trait is deliberately
//! small so an async transport can be added without touching protocol code.
//!
//! ## Example
//!
//! ```
//! use gossip_net::{GossipCluster, ClusterConfig};
//!
//! // Five nodes holding 1..=5 gossip in-process for 30 cycles of 5 ms.
//! let config = ClusterConfig { cycle_length_ms: 5, cycles: 30 };
//! let report = GossipCluster::run_in_memory(&[1.0, 2.0, 3.0, 4.0, 5.0], config).unwrap();
//! // Every node's estimate has converged close to the true average 3.0.
//! assert!(report.estimates.iter().all(|e| (e - 3.0).abs() < 1.0));
//! // The runtime counts exchange outcomes instead of swallowing them.
//! assert!(report.stats.exchanges_completed > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod codec;
mod error;
mod lockstep;
mod memory;
mod node_core;
mod runtime;
mod transport;
mod udp;

pub use error::NetError;
pub use lockstep::VirtualCluster;
pub use memory::InMemoryNetwork;
pub use node_core::{Delivery, NodeCore};
pub use runtime::{
    ClusterConfig, ClusterReport, GossipCluster, GossipRuntime, NodeEnv, NodeHandle, RuntimeStats,
    FAULT_SCHEDULE_STREAM,
};
pub use transport::Transport;
pub use udp::UdpTransport;
