//! The per-node protocol step shared by both gossip-net runtimes.
//!
//! [`NodeCore`] wraps one [`ProtocolNode`] and drives every state transition
//! through [`ExchangeCore`] — `begin` for the active half, `deliver` for each
//! in-flight message — while tracking the *one* piece of state a live
//! transport adds over a simulator: whether this node currently has an
//! exchange in flight (pushes sent, replies awaited).
//!
//! That pending flag is what fixes the old runtime's silent mass leak:
//! push–pull conserves the network-wide sum only if the initiator's state is
//! untouched between reading its value into the push and absorbing the
//! reply. A concurrent push arriving in that window used to be served
//! anyway, silently breaking conservation. `NodeCore` instead rejects
//! overlapping pushes ([`Delivery::RejectedOverlap`]) — the would-be
//! initiator simply times out and retries next cycle, exactly as it would
//! after a lost message — and drops replies that match no pending exchange
//! ([`Delivery::UnmatchedReply`]), so a late reply cannot be absorbed twice.

use aggregate_core::node::{EpochResult, ProtocolNode};
use aggregate_core::{ExchangeCore, GossipMessage};
use overlay_topology::NodeId;

/// Outcome of delivering one in-flight message to a [`NodeCore`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Delivery {
    /// A push was absorbed and this reply must be sent back to its sender.
    Reply(GossipMessage),
    /// The message was absorbed with no reply owed (e.g. a stale-epoch push
    /// the node dropped, or a push that triggered an epoch jump).
    Absorbed,
    /// A reply matching the pending exchange was absorbed; more replies are
    /// still expected (one per push sent).
    ReplyAbsorbed,
    /// The final expected reply was absorbed and the pending exchange is now
    /// closed — the node can serve pushes again immediately.
    ExchangeComplete,
    /// A push arrived while this node awaits a reply of its own. It was
    /// dropped *unprocessed* — serving it would mutate the initiator state
    /// between `begin` and the reply, violating mass conservation.
    RejectedOverlap,
    /// A reply that matches no pending exchange (late, duplicate, or from a
    /// peer this node never pushed to). Dropped unprocessed.
    UnmatchedReply,
}

/// State of one pending (awaiting-reply) exchange.
#[derive(Debug, Clone, Copy)]
struct Pending {
    peer: NodeId,
    /// Replies expected: one per push the exchange sent.
    expected: usize,
    replies_absorbed: usize,
}

/// One node's protocol state plus the in-flight exchange tracking a live
/// message path needs. Both gossip-net runtimes — the threaded
/// [`crate::GossipRuntime`] and the deterministic [`crate::VirtualCluster`]
/// — step their nodes exclusively through this type.
#[derive(Debug)]
pub struct NodeCore {
    node: ProtocolNode,
    pending: Option<Pending>,
}

impl NodeCore {
    /// Wraps a protocol node with no exchange in flight.
    pub fn new(node: ProtocolNode) -> Self {
        NodeCore {
            node,
            pending: None,
        }
    }

    /// The node's identifier.
    pub fn id(&self) -> NodeId {
        self.node.id()
    }

    /// Read access to the wrapped protocol node.
    pub fn node(&self) -> &ProtocolNode {
        &self.node
    }

    /// Mutable access to the wrapped protocol node (leader election, value
    /// corruption — the non-exchange operations an engine performs).
    pub fn node_mut(&mut self) -> &mut ProtocolNode {
        &mut self.node
    }

    /// Whether an exchange is currently awaiting replies.
    pub fn is_pending(&self) -> bool {
        self.pending.is_some()
    }

    /// Active half: fills `pushes` via [`ExchangeCore::begin`] and marks the
    /// exchange pending. Returns `false` — initiating nothing — when the node
    /// may not participate, has nothing to push, or still has an exchange in
    /// flight (callers close the previous exchange with
    /// [`NodeCore::close_pending`] at their cycle boundary first).
    pub fn begin(&mut self, peer: NodeId, pushes: &mut Vec<GossipMessage>) -> bool {
        if self.pending.is_some() {
            return false;
        }
        if !ExchangeCore::begin(&mut self.node, peer, pushes) {
            return false;
        }
        self.pending = Some(Pending {
            peer,
            expected: pushes.len(),
            replies_absorbed: 0,
        });
        true
    }

    /// Delivers one received message through [`ExchangeCore::deliver`],
    /// enforcing the no-overlap rule documented on [`Delivery`].
    pub fn deliver(&mut self, message: GossipMessage) -> Delivery {
        match message {
            GossipMessage::Push { .. } => {
                if self.pending.is_some() {
                    return Delivery::RejectedOverlap;
                }
                match ExchangeCore::deliver(&mut self.node, message) {
                    Some(reply) => Delivery::Reply(reply),
                    None => Delivery::Absorbed,
                }
            }
            GossipMessage::Reply { from, .. } => match self.pending.as_mut() {
                Some(pending) if pending.peer == from => {
                    ExchangeCore::deliver(&mut self.node, message);
                    pending.replies_absorbed += 1;
                    if pending.replies_absorbed >= pending.expected {
                        // Every push was answered: the exchange is settled,
                        // free the node to serve pushes again right away
                        // instead of holding the lock-out until the cycle
                        // boundary (two nodes pushing at each other every
                        // cycle would otherwise reject forever).
                        self.pending = None;
                        Delivery::ExchangeComplete
                    } else {
                        Delivery::ReplyAbsorbed
                    }
                }
                _ => Delivery::UnmatchedReply,
            },
        }
    }

    /// Closes a still-pending exchange, if any — the timeout path for
    /// exchanges whose replies were (partially) lost; fully-answered
    /// exchanges close themselves on [`Delivery::ExchangeComplete`].
    /// `Some(true)` when at least one reply was absorbed, `Some(false)` when
    /// none arrived (replies arriving later are dropped as
    /// [`Delivery::UnmatchedReply`]), `None` when nothing was pending.
    pub fn close_pending(&mut self) -> Option<bool> {
        self.pending.take().map(|p| p.replies_absorbed > 0)
    }

    /// End-of-cycle bookkeeping on the wrapped node (epoch advance/restart).
    pub fn end_cycle(&mut self) -> Option<EpochResult> {
        self.node.end_cycle()
    }

    /// The node's current default-instance estimate.
    pub fn estimate(&self) -> Option<f64> {
        self.node.estimate()
    }

    /// The epoch the node is currently executing.
    pub fn current_epoch(&self) -> u64 {
        self.node.current_epoch()
    }

    /// Updates the node's local attribute value (picked up at the next epoch
    /// restart, as in the paper's adaptive protocol).
    pub fn set_local_value(&mut self, value: f64) {
        self.node.set_local_value(value);
    }

    /// Overwrites the node's running estimate (the fault lab's adversarial
    /// value injection).
    pub fn corrupt_estimate(&mut self, value: f64) {
        self.node.corrupt_estimate(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggregate_core::ProtocolConfig;

    fn core(id: usize, value: f64) -> NodeCore {
        NodeCore::new(ProtocolNode::new(
            NodeId::new(id),
            ProtocolConfig::default(),
            value,
        ))
    }

    #[test]
    fn full_exchange_through_deliver_matches_direct_averaging() {
        let mut a = core(0, 2.0);
        let mut b = core(1, 6.0);
        let mut pushes = Vec::new();
        assert!(a.begin(NodeId::new(1), &mut pushes));
        assert!(a.is_pending());
        let Delivery::Reply(reply) = b.deliver(pushes[0]) else {
            panic!("push must produce a reply");
        };
        // One push sent → the one reply settles the exchange on the spot.
        assert_eq!(a.deliver(reply), Delivery::ExchangeComplete);
        assert!(!a.is_pending());
        assert_eq!(a.close_pending(), None);
        assert_eq!(a.estimate(), Some(4.0));
        assert_eq!(b.estimate(), Some(4.0));
    }

    #[test]
    fn overlapping_push_is_rejected_and_conserves_mass() {
        let mut a = core(0, 0.0);
        let mut b = core(1, 10.0);
        let mut c = core(2, 20.0);
        let mut pushes = Vec::new();
        // a is mid-exchange with b …
        assert!(a.begin(NodeId::new(1), &mut pushes));
        let ab_push = pushes[0];
        // … when c pushes to a: rejected unprocessed, a's state untouched.
        let mut c_pushes = Vec::new();
        assert!(c.begin(NodeId::new(0), &mut c_pushes));
        assert_eq!(a.deliver(c_pushes[0]), Delivery::RejectedOverlap);
        assert_eq!(a.estimate(), Some(0.0));
        // The a↔b exchange still completes exactly.
        let Delivery::Reply(reply) = b.deliver(ab_push) else {
            panic!("push must produce a reply");
        };
        assert_eq!(a.deliver(reply), Delivery::ExchangeComplete);
        // c's exchange timed out; total mass is conserved.
        assert_eq!(c.close_pending(), Some(false));
        let total: f64 = [&a, &b, &c].iter().filter_map(|n| n.estimate()).sum();
        assert_eq!(total, 30.0);
    }

    #[test]
    fn late_and_unmatched_replies_are_dropped() {
        let mut a = core(0, 2.0);
        let mut b = core(1, 6.0);
        let mut pushes = Vec::new();
        assert!(a.begin(NodeId::new(1), &mut pushes));
        let Delivery::Reply(reply) = b.deliver(pushes[0]) else {
            panic!("push must produce a reply");
        };
        // The exchange times out before the reply arrives …
        assert_eq!(a.close_pending(), Some(false));
        // … so the late reply must not be absorbed.
        assert_eq!(a.deliver(reply), Delivery::UnmatchedReply);
        assert_eq!(a.estimate(), Some(2.0));
        // A reply from a peer other than the pending one is equally dropped.
        assert!(a.begin(NodeId::new(1), &mut pushes));
        let stray = GossipMessage::Reply {
            from: NodeId::new(3),
            to: NodeId::new(0),
            instance: aggregate_core::InstanceTag::DEFAULT,
            epoch: 0,
            value: 9.0,
        };
        assert_eq!(a.deliver(stray), Delivery::UnmatchedReply);
        assert_eq!(a.estimate(), Some(2.0));
    }

    #[test]
    fn begin_refuses_while_pending() {
        let mut a = core(0, 1.0);
        let mut pushes = Vec::new();
        assert!(a.begin(NodeId::new(1), &mut pushes));
        assert!(!a.begin(NodeId::new(2), &mut pushes));
        a.close_pending();
        assert!(a.begin(NodeId::new(2), &mut pushes));
    }
}
