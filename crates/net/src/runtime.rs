//! Threaded node runtime and single-process cluster helper.
//!
//! The runtime thread is a thin scheduler around the shared protocol core:
//! every exchange state transition goes through [`NodeCore`] (and therefore
//! [`aggregate_core::ExchangeCore`]), and everything environmental reaches
//! the loop through an injected [`NodeEnv`] — a [`Clock`], a seeded RNG, a
//! [`PeerSampler`], a [`FaultInjector`] and the [`Transport`]. The same
//! `SamplerConfig` and `FaultPlan` values that configure the simulators plug
//! in here unchanged, so link vetoes, loss, partitions and crash bursts work
//! against a live UDP cluster exactly as they do in the fault lab.

use crate::node_core::{Delivery, NodeCore};
use crate::{InMemoryNetwork, NetError, Transport};
use aggregate_core::effects::{Clock, SeedSequence, SystemClock};
use aggregate_core::node::ProtocolNode;
use aggregate_core::sampler::UniformSampler;
use aggregate_core::sampler::{sample_live_peer, PeerSampler, SamplerConfig, SliceDirectory};
use aggregate_core::{GossipMessage, ProtocolConfig};
use gossip_faults::{Adversary, AdversaryPlan, FaultInjector, FaultPlan, PlanInjector};
use gossip_sim::instantiate_sampler;
use gossip_sim::sampling::{ADVERSARY_STREAM, FAULTS_STREAM};
use gossip_telemetry::{Event, TelemetryConfig, TelemetrySink};
use overlay_topology::NodeId;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Label of the seed stream feeding the cluster-wide crash/corruption victim
/// draws. Every node derives this stream from the *same* cluster
/// [`SeedSequence`], so all nodes agree on which of them a crash burst kills
/// without any coordination messages.
pub const FAULT_SCHEDULE_STREAM: &str = "fault-schedule";

/// Snapshot of a runtime's typed event counters.
///
/// Exchange outcomes (started / completed / timed out / vetoed / rejected)
/// and transport failures (send, receive, decode) are counted instead of
/// swallowed; [`NodeHandle::stats`] reads a live node, and the cluster
/// helper's [`ClusterReport`] sums the whole run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Exchanges this node initiated (pushes formed and sent).
    pub exchanges_started: u64,
    /// Initiated exchanges that absorbed at least one reply.
    pub exchanges_completed: u64,
    /// Initiated exchanges closed at the next cycle boundary with no reply.
    pub exchanges_timed_out: u64,
    /// Exchange attempts vetoed by the fault lab before any message was
    /// formed (dead link or active partition to the sampled peer).
    pub exchanges_vetoed: u64,
    /// Incoming pushes rejected because this node had its own exchange in
    /// flight (the mass-conservation rule of [`NodeCore`]).
    pub pushes_rejected: u64,
    /// Messages dropped by the fault lab's loss model before sending.
    pub messages_lost: u64,
    /// Transport send failures.
    pub send_errors: u64,
    /// Transport receive failures other than decode errors.
    pub recv_errors: u64,
    /// Frames that failed to decode into a protocol message.
    pub decode_errors: u64,
    /// Cycle boundaries this node has crossed (cluster totals sum over
    /// nodes). Lets observers wait on protocol progress instead of
    /// wall-clock guesses.
    pub cycles_run: u64,
}

impl RuntimeStats {
    /// Adds another snapshot's counters into this one (cluster totals).
    pub fn merge(&mut self, other: RuntimeStats) {
        self.exchanges_started += other.exchanges_started;
        self.exchanges_completed += other.exchanges_completed;
        self.exchanges_timed_out += other.exchanges_timed_out;
        self.exchanges_vetoed += other.exchanges_vetoed;
        self.pushes_rejected += other.pushes_rejected;
        self.messages_lost += other.messages_lost;
        self.send_errors += other.send_errors;
        self.recv_errors += other.recv_errors;
        self.decode_errors += other.decode_errors;
        self.cycles_run += other.cycles_run;
    }
}

/// Lock-free counter cell shared between the runtime thread and its handles.
#[derive(Debug, Default)]
struct StatsCell {
    exchanges_started: AtomicU64,
    exchanges_completed: AtomicU64,
    exchanges_timed_out: AtomicU64,
    exchanges_vetoed: AtomicU64,
    pushes_rejected: AtomicU64,
    messages_lost: AtomicU64,
    send_errors: AtomicU64,
    recv_errors: AtomicU64,
    decode_errors: AtomicU64,
    cycles_run: AtomicU64,
}

impl StatsCell {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> RuntimeStats {
        RuntimeStats {
            exchanges_started: self.exchanges_started.load(Ordering::Relaxed),
            exchanges_completed: self.exchanges_completed.load(Ordering::Relaxed),
            exchanges_timed_out: self.exchanges_timed_out.load(Ordering::Relaxed),
            exchanges_vetoed: self.exchanges_vetoed.load(Ordering::Relaxed),
            pushes_rejected: self.pushes_rejected.load(Ordering::Relaxed),
            messages_lost: self.messages_lost.load(Ordering::Relaxed),
            send_errors: self.send_errors.load(Ordering::Relaxed),
            recv_errors: self.recv_errors.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
            cycles_run: self.cycles_run.load(Ordering::Relaxed),
        }
    }
}

/// A periodic, point-in-time view of one live node: the current cycle
/// ordinal and estimate alongside the typed counters — the mid-run
/// visibility [`RuntimeStats`] alone (an end-of-run readout) cannot give.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsSnapshot {
    /// Cycle boundaries crossed so far (the node's logical time).
    pub cycle: u64,
    /// The epoch the node is currently executing.
    pub epoch: u64,
    /// The node's current estimate of the aggregate, if it holds one.
    pub estimate: Option<f64>,
    /// The typed event counters at snapshot time.
    pub stats: RuntimeStats,
}

/// Shared, thread-safe view of a running node's state.
#[derive(Debug, Clone)]
pub struct NodeHandle {
    id: NodeId,
    node: Arc<Mutex<NodeCore>>,
    stats: Arc<StatsCell>,
    telemetry: Arc<Mutex<TelemetrySink>>,
}

impl NodeHandle {
    /// The node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's current estimate of the aggregate.
    pub fn estimate(&self) -> Option<f64> {
        self.node.lock().estimate()
    }

    /// The epoch the node is currently executing.
    pub fn current_epoch(&self) -> u64 {
        self.node.lock().current_epoch()
    }

    /// Updates the node's local attribute value (picked up at the next epoch
    /// restart, as in the paper's adaptive protocol).
    pub fn set_local_value(&self, value: f64) {
        self.node.lock().set_local_value(value);
    }

    /// A snapshot of the node's typed event counters.
    pub fn stats(&self) -> RuntimeStats {
        self.stats.snapshot()
    }

    /// A periodic mid-run snapshot: current cycle, epoch, estimate and the
    /// typed counters in one consistent read (the counters and node state
    /// are sampled back to back, not atomically — good enough for the
    /// monitoring this serves).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let (epoch, estimate) = {
            let core = self.node.lock();
            (core.current_epoch(), core.estimate())
        };
        let stats = self.stats.snapshot();
        MetricsSnapshot {
            cycle: stats.cycles_run,
            epoch,
            estimate,
            stats,
        }
    }

    /// Drains this node's flight recorder in canonical trace order. Empty
    /// unless the runtime was spawned with event recording enabled
    /// ([`NodeEnv::with_telemetry`]).
    pub fn drain_trace(&self) -> Vec<Event> {
        self.telemetry.lock().drain_events() // lint-allow(observer-effect): post-hoc export accessor for observers, not protocol logic
    }

    /// Renders the node's telemetry counters (post-hoc readout).
    pub fn telemetry_metrics(&self) -> String {
        self.telemetry.lock().metrics().render() // lint-allow(observer-effect): post-hoc metrics accessor for observers, not protocol logic
    }
}

/// The injected environment one runtime thread lives in: transport, clock,
/// entropy, peer sampling and fault injection.
///
/// [`NodeEnv::real`] is the deployment environment — [`SystemClock`], a
/// seeded [`StdRng`], uniform sampling over the transport's peers and the
/// empty fault plan. The builder methods swap individual effects; the
/// deterministic lockstep counterpart lives in [`crate::VirtualCluster`],
/// which binds a `VirtualClock` and labelled `SeedSequence` streams instead.
#[derive(Debug)]
pub struct NodeEnv<T: Transport> {
    transport: T,
    clock: Box<dyn Clock>,
    rng: StdRng,
    sampler: Box<dyn PeerSampler + Send>,
    injector: Box<dyn FaultInjector + Send>,
    /// The stateful adversary: when this node is a colluder, it re-asserts
    /// the attack value at every cycle boundary, exactly as the simulators'
    /// colluders do. Cluster-shared seed stream ⇒ every node agrees on the
    /// colluding set without coordination.
    adversary: Adversary,
    /// Cluster-shared stream for crash/corruption victim selection; identical
    /// on every node of a cluster (see [`FAULT_SCHEDULE_STREAM`]).
    fault_schedule: StdRng,
    /// Per-node observability configuration; disabled by default. The
    /// spawned runtime owns a private [`TelemetrySink`] built from this,
    /// timestamped via the injected clock.
    telemetry: TelemetryConfig,
}

impl<T: Transport> NodeEnv<T> {
    /// The real deployment environment over `transport`: wall-clock time, a
    /// node-private RNG stream seeded with `seed`, uniform peer sampling and
    /// no injected faults.
    pub fn real(transport: T, seed: u64) -> Self {
        NodeEnv {
            transport,
            clock: Box::new(SystemClock::new()),
            rng: StdRng::seed_from_u64(seed),
            sampler: Box::new(UniformSampler::new()),
            injector: Box::new(PlanInjector::new(FaultPlan::none(), 0)),
            adversary: Adversary::none(),
            fault_schedule: StdRng::seed_from_u64(0),
            telemetry: TelemetryConfig::disabled(),
        }
    }

    /// Enables per-node telemetry: the runtime thread records protocol
    /// events (begun / completed / vetoed / rejected / lost, churn,
    /// corruption) into a private flight recorder, drained through
    /// [`NodeHandle::drain_trace`]. Event sequence numbers are per-node
    /// ordinals — the initiator band counts this node's initiated
    /// exchanges, served pushes count separately — faithful to what one
    /// node can observe of an asynchronous cluster.
    pub fn with_telemetry(mut self, config: TelemetryConfig) -> Self {
        self.telemetry = config;
        self
    }

    /// Replaces the clock (e.g. a [`aggregate_core::effects::VirtualClock`]
    /// in tests that step time manually).
    pub fn with_clock(mut self, clock: impl Clock + 'static) -> Self {
        self.clock = Box::new(clock);
        self
    }

    /// Builds the peer-sampling layer from the *same* [`SamplerConfig`] the
    /// simulators take, deriving its internal seeds from the cluster-wide
    /// `seeds` through the same labelled streams — all nodes of a cluster
    /// construct the same overlay.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidConfig`] when the configuration cannot be realised
    /// (invalid overlay-generator parameters, zero NEWSCAST cache).
    pub fn with_sampler(
        mut self,
        config: SamplerConfig,
        seeds: &SeedSequence,
    ) -> Result<Self, NetError> {
        let mut members = self.transport.peers();
        members.push(self.transport.local_node());
        members.sort();
        self.sampler =
            instantiate_sampler(config, &members, seeds).map_err(|e| NetError::InvalidConfig {
                reason: e.to_string(),
            })?;
        Ok(self)
    }

    /// Arms the fault lab with the *same* [`FaultPlan`] the simulators take,
    /// seeding the injector from the cluster-wide `seeds` through the same
    /// labelled stream — all nodes agree on dead links, partitions, loss
    /// schedules and victim draws.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidConfig`] for a malformed schedule.
    pub fn with_faults(mut self, plan: FaultPlan, seeds: &SeedSequence) -> Result<Self, NetError> {
        plan.validate().map_err(|e| NetError::InvalidConfig {
            reason: e.to_string(),
        })?;
        self.injector = Box::new(PlanInjector::new(
            plan,
            seeds.seed_for_labeled(0, FAULTS_STREAM),
        ));
        self.fault_schedule = seeds.rng_for_labeled(0, FAULT_SCHEDULE_STREAM);
        Ok(self)
    }

    /// Arms the stateful adversary with the *same* [`AdversaryPlan`] the
    /// simulators take, deriving the colluder coins from the cluster-wide
    /// `seeds` through the same labelled stream over the sorted member list
    /// — every node of a cluster agrees on who is colluding without any
    /// coordination messages, and each colluder re-asserts its lie at every
    /// cycle boundary.
    ///
    /// Leader capture ([`gossip_faults::AttackStrategy::LeaderCapture`]) is
    /// inert here: the live runtime runs no counting-instance elections, so
    /// there are no leaders to capture. The simulators and
    /// [`crate::VirtualCluster`] exercise that half of the lab.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidConfig`] for a malformed adversary plan.
    pub fn with_adversary(
        mut self,
        plan: AdversaryPlan,
        seeds: &SeedSequence,
    ) -> Result<Self, NetError> {
        plan.validate().map_err(|e| NetError::InvalidConfig {
            reason: e.to_string(),
        })?;
        let mut members = self.transport.peers();
        members.push(self.transport.local_node());
        members.sort();
        self.adversary =
            Adversary::new(plan, seeds.seed_for_labeled(0, ADVERSARY_STREAM), &members);
        Ok(self)
    }
}

/// One node of a deployed gossip network: a dedicated OS thread that runs the
/// active cycle of Figure 1 (wait `Δt`, sample a peer, push) and serves
/// incoming exchanges in between — all node stepping through [`NodeCore`].
#[derive(Debug)]
pub struct GossipRuntime {
    handle: NodeHandle,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl GossipRuntime {
    /// Spawns the runtime thread for one node over the real environment
    /// ([`NodeEnv::real`] with the given seed).
    ///
    /// `transport` must belong to the node (its `local_node` defines the
    /// node's identity); `config.cycle_length_ms()` sets `Δt`.
    pub fn spawn<T: Transport + 'static>(
        transport: T,
        config: ProtocolConfig,
        local_value: f64,
        seed: u64,
    ) -> GossipRuntime {
        GossipRuntime::spawn_env(NodeEnv::real(transport, seed), config, local_value)
    }

    /// Spawns the runtime thread for one node over an explicit environment.
    pub fn spawn_env<T: Transport + 'static>(
        env: NodeEnv<T>,
        config: ProtocolConfig,
        local_value: f64,
    ) -> GossipRuntime {
        let id = env.transport.local_node();
        let node = Arc::new(Mutex::new(NodeCore::new(ProtocolNode::new(
            id,
            config,
            local_value,
        ))));
        let stats = Arc::new(StatsCell::default());
        let telemetry = Arc::new(Mutex::new(TelemetrySink::new(env.telemetry)));
        let stop = Arc::new(AtomicBool::new(false));
        let handle = NodeHandle {
            id,
            node: Arc::clone(&node),
            stats: Arc::clone(&stats),
            telemetry: Arc::clone(&telemetry),
        };
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            run_node_loop(env, node, config, stats, telemetry, &stop_flag);
        });
        GossipRuntime {
            handle,
            stop,
            thread: Some(thread),
        }
    }

    /// A cloneable handle for observing and steering the node.
    pub fn handle(&self) -> NodeHandle {
        self.handle.clone()
    }

    /// Signals the runtime thread to stop and waits for it to finish.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for GossipRuntime {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Mutable per-cycle membership view of one runtime thread.
struct CycleState {
    /// Members not yet killed by a crash burst, in a deterministic order
    /// every node reproduces from the shared fault-schedule stream.
    live_ids: Vec<NodeId>,
    /// Whether a crash burst killed *this* node (it then goes silent).
    crashed: bool,
    /// This cycle's message-loss probability.
    loss: f64,
}

fn run_node_loop<T: Transport>(
    mut env: NodeEnv<T>,
    node: Arc<Mutex<NodeCore>>,
    config: ProtocolConfig,
    stats: Arc<StatsCell>,
    telemetry: Arc<Mutex<TelemetrySink>>,
    stop: &AtomicBool,
) {
    // Cached once: with telemetry disabled every hook below is one branch.
    let events = telemetry.lock().events_enabled();
    // Per-node event ordinals: initiated exchanges and served pushes count
    // separately (an asynchronous node cannot know its peers' numbering).
    let mut init_seq: u64 = 0;
    let mut serve_seq: u64 = 0;
    let local = env.transport.local_node();
    let cycle_length = config.cycle_length_ms().max(1);
    let mut members = env.transport.peers();
    members.push(local);
    members.sort();
    let mut state = CycleState {
        live_ids: members,
        crashed: false,
        loss: 0.0,
    };
    let mut cycle: usize = 0;
    let mut pushes: Vec<GossipMessage> = Vec::new();
    // Replies land within a network round-trip; once a pending exchange has
    // outlived this deadline its replies were lost or the push was rejected,
    // and the node must close it early and resume answering pushes. Holding
    // the pending slot to the cycle boundary instead lets rejections cascade:
    // every push the stuck node rejects strands another initiator, and a
    // fault-free symmetric cluster can livelock with nobody completing.
    let reply_timeout = (cycle_length / 4).max(2);
    let mut reply_deadline = u64::MAX;

    // Enter cycle 0 (fault + overlay bookkeeping) without initiating yet:
    // the random initial phase staggers the first active exchanges so nodes
    // do not fire in lock-step.
    if events {
        telemetry.lock().begin_cycle(0, env.clock.now_ms());
    }
    enter_cycle(
        &mut env, cycle, &mut state, &node, local, &telemetry, events,
    );
    let mut next_cycle =
        env.clock.now_ms() + (cycle_length as f64 * env.rng.gen_range(0.0..1.0)) as u64;

    while !stop.load(Ordering::SeqCst) {
        // Serve incoming exchanges until the next cycle boundary.
        let now = env.clock.now_ms();
        if now < next_cycle {
            if now >= reply_deadline {
                match node.lock().close_pending() {
                    Some(true) => {
                        StatsCell::bump(&stats.exchanges_completed);
                        if events {
                            telemetry
                                .lock()
                                .exchange_completed(init_seq.wrapping_sub(1));
                        }
                    }
                    Some(false) => StatsCell::bump(&stats.exchanges_timed_out),
                    None => {}
                }
                reply_deadline = u64::MAX;
            }
            let wait = Duration::from_millis((next_cycle - now).min(1));
            match env.transport.recv_timeout(wait) {
                Ok(Some(message)) => {
                    if !state.crashed {
                        serve(
                            &mut env,
                            &node,
                            &state,
                            message,
                            &stats,
                            ServeTelemetry {
                                sink: &telemetry,
                                events,
                                serve_seq: &mut serve_seq,
                                init_seq,
                                local,
                            },
                        );
                    }
                }
                Ok(None) => {}
                Err(NetError::Decode { .. }) => StatsCell::bump(&stats.decode_errors),
                Err(_) => {
                    // Transport failure: count it, back off briefly, keep
                    // serving; the protocol tolerates lost exchanges.
                    StatsCell::bump(&stats.recv_errors);
                    env.clock.advance(1);
                }
            }
            continue;
        }

        // Cycle boundary: settle the in-flight exchange, advance the epoch
        // machinery, enter the next cycle and run the active half.
        let epoch_restart = {
            let mut core = node.lock();
            match core.close_pending() {
                Some(true) => {
                    StatsCell::bump(&stats.exchanges_completed);
                    if events {
                        telemetry
                            .lock()
                            .exchange_completed(init_seq.wrapping_sub(1));
                    }
                }
                Some(false) => StatsCell::bump(&stats.exchanges_timed_out),
                None => {}
            }
            if !state.crashed {
                core.end_cycle().map(|result| result.epoch)
            } else {
                None
            }
        };
        if events {
            if let Some(epoch) = epoch_restart {
                telemetry.lock().epoch_restarted(epoch);
            }
        }
        cycle += 1;
        StatsCell::bump(&stats.cycles_run);
        if events {
            telemetry
                .lock()
                .begin_cycle(cycle as u64, env.clock.now_ms());
        }
        enter_cycle(
            &mut env, cycle, &mut state, &node, local, &telemetry, events,
        );
        if !state.crashed {
            initiate(
                &mut env,
                &node,
                &state,
                &mut pushes,
                local,
                &stats,
                &telemetry,
                events,
                &mut init_seq,
            );
        }
        reply_deadline = if node.lock().is_pending() {
            env.clock.now_ms().saturating_add(reply_timeout)
        } else {
            u64::MAX
        };
        next_cycle = next_cycle.saturating_add(cycle_length);
    }
}

/// Per-cycle fault-lab and overlay bookkeeping, identical on every node:
/// crash bursts and value corruptions are drawn from streams every node
/// shares, so the cluster agrees on victims without coordination.
#[allow(clippy::too_many_arguments)]
fn enter_cycle<T: Transport>(
    env: &mut NodeEnv<T>,
    cycle: usize,
    state: &mut CycleState,
    node: &Mutex<NodeCore>,
    local: NodeId,
    telemetry: &Mutex<TelemetrySink>,
    events: bool,
) {
    env.injector.begin_cycle(cycle);
    let victims = env.injector.crash_count(state.live_ids.len());
    for _ in 0..victims {
        if state.live_ids.is_empty() {
            break;
        }
        let k = env.fault_schedule.gen_range(0..state.live_ids.len());
        let victim = state.live_ids.swap_remove(k);
        env.sampler.on_depart(victim);
        if victim == local {
            state.crashed = true;
            // Each node's trace records only its own crash; merging per-node
            // traces therefore yields one departure event per victim.
            if events {
                telemetry.lock().node_departed(u64::from(local.as_u32()));
            }
        }
    }
    // The stateful adversary next, in the simulators' order: a colluding
    // node re-asserts its lie every cycle, and the one-shot ValueInjection
    // never double-corrupts a node the adversary is actively lying through.
    if env.adversary.is_colluder(local) {
        if let Some(value) = env.adversary.lie_at(cycle) {
            node.lock().corrupt_estimate(value);
            if events {
                telemetry.lock().value_corrupted(u64::from(local.as_u32()));
            }
        }
    }
    for (pos, value) in env.injector.corruptions(state.live_ids.len()) {
        if state.live_ids.get(pos) == Some(&local)
            && !env.adversary.overrides_injection(cycle, local)
        {
            node.lock().corrupt_estimate(value);
            if events {
                telemetry.lock().value_corrupted(u64::from(local.as_u32()));
            }
        }
    }
    state.loss = env.injector.loss_probability();
    env.sampler
        .begin_cycle(&SliceDirectory::new(&state.live_ids));
}

/// The active half of Figure 1: sample a peer, let the fault lab veto the
/// contact, otherwise begin the exchange through the core and ship the
/// pushes (each through the loss gate).
#[allow(clippy::too_many_arguments)]
fn initiate<T: Transport>(
    env: &mut NodeEnv<T>,
    node: &Mutex<NodeCore>,
    state: &CycleState,
    pushes: &mut Vec<GossipMessage>,
    local: NodeId,
    stats: &StatsCell,
    telemetry: &Mutex<TelemetrySink>,
    events: bool,
    init_seq: &mut u64,
) {
    let Some(self_pos) = state.live_ids.iter().position(|&id| id == local) else {
        return;
    };
    let directory = SliceDirectory::new(&state.live_ids);
    let Some(peer) = sample_live_peer(env.sampler.as_mut(), &directory, self_pos, &mut env.rng)
    else {
        return;
    };
    if env.injector.link_blocked(local, peer) {
        env.sampler.peer_failed(local, peer);
        StatsCell::bump(&stats.exchanges_vetoed);
        if events {
            telemetry
                .lock()
                .exchange_vetoed(u64::from(local.as_u32()), u64::from(peer.as_u32()));
        }
        return;
    }
    if !node.lock().begin(peer, pushes) {
        return;
    }
    StatsCell::bump(&stats.exchanges_started);
    let seq = *init_seq;
    *init_seq += 1;
    if events {
        telemetry
            .lock()
            .exchange_begun(seq, u64::from(local.as_u32()), u64::from(peer.as_u32()));
    }
    for push in pushes.iter() {
        if state.loss > 0.0 && env.rng.gen_bool(state.loss) {
            StatsCell::bump(&stats.messages_lost);
            if events {
                telemetry.lock().message_lost(seq);
            }
            continue;
        }
        if env.transport.send(push).is_err() {
            StatsCell::bump(&stats.send_errors);
        }
    }
}

/// The passive half: deliver one received message through the core and send
/// back the reply it owes, if any (through the loss gate).
/// Telemetry context for [`serve`]: the shared sink plus the two per-node
/// ordinal streams (served pushes get fresh ordinals; a completing reply is
/// attributed to the most recent initiated exchange).
struct ServeTelemetry<'a> {
    sink: &'a Mutex<TelemetrySink>,
    events: bool,
    serve_seq: &'a mut u64,
    init_seq: u64,
    local: NodeId,
}

fn serve<T: Transport>(
    env: &mut NodeEnv<T>,
    node: &Mutex<NodeCore>,
    state: &CycleState,
    message: GossipMessage,
    stats: &StatsCell,
    telemetry: ServeTelemetry<'_>,
) {
    match node.lock().deliver(message) {
        Delivery::Reply(reply) => {
            let seq = *telemetry.serve_seq;
            *telemetry.serve_seq += 1;
            if state.loss > 0.0 && env.rng.gen_bool(state.loss) {
                StatsCell::bump(&stats.messages_lost);
                if telemetry.events {
                    telemetry.sink.lock().message_lost(seq);
                }
            } else if env.transport.send(&reply).is_err() {
                StatsCell::bump(&stats.send_errors);
            }
        }
        Delivery::ExchangeComplete => {
            StatsCell::bump(&stats.exchanges_completed);
            if telemetry.events {
                telemetry
                    .sink
                    .lock()
                    .exchange_completed(telemetry.init_seq.wrapping_sub(1));
            }
        }
        Delivery::RejectedOverlap => {
            StatsCell::bump(&stats.pushes_rejected);
            if telemetry.events {
                let seq = *telemetry.serve_seq;
                *telemetry.serve_seq += 1;
                telemetry
                    .sink
                    .lock()
                    .exchange_rejected(seq, u64::from(telemetry.local.as_u32()));
            }
        }
        Delivery::Absorbed | Delivery::ReplyAbsorbed | Delivery::UnmatchedReply => {}
    }
}

/// Configuration of a [`GossipCluster`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Cycle length `Δt` in milliseconds.
    pub cycle_length_ms: u64,
    /// Number of cycles to let the cluster run before reading the estimates.
    pub cycles: u32,
}

/// Result of a [`GossipCluster`] run: final per-node estimates plus the
/// summed runtime counters of every node.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// Each node's final estimate, in node order.
    pub estimates: Vec<f64>,
    /// The cluster-wide sum of every node's [`RuntimeStats`].
    pub stats: RuntimeStats,
}

/// Convenience driver that runs a whole gossip network inside one process.
#[derive(Debug)]
pub struct GossipCluster;

impl GossipCluster {
    /// Runs `values.len()` nodes over the in-memory transport for
    /// `config.cycles` cycles of averaging — uniform sampling, no faults —
    /// and returns each node's final estimate plus the summed counters.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidConfig`] for empty inputs or a zero cycle
    /// length.
    pub fn run_in_memory(values: &[f64], config: ClusterConfig) -> Result<ClusterReport, NetError> {
        GossipCluster::run_with(
            values,
            config,
            SamplerConfig::UniformComplete,
            FaultPlan::none(),
        )
    }

    /// Runs the in-memory cluster with the simulator-grade knobs: any
    /// [`SamplerConfig`] and any [`FaultPlan`], taken *unchanged* — the same
    /// values a [`gossip_sim::GossipSimulation`] accepts.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidConfig`] for empty inputs, a zero cycle
    /// length, an unrealisable sampler configuration or a malformed fault
    /// plan.
    pub fn run_with(
        values: &[f64],
        config: ClusterConfig,
        sampler: SamplerConfig,
        plan: FaultPlan,
    ) -> Result<ClusterReport, NetError> {
        if values.is_empty() {
            return Err(NetError::InvalidConfig {
                reason: "at least one node is required".to_string(),
            });
        }
        if config.cycle_length_ms == 0 || config.cycles == 0 {
            return Err(NetError::InvalidConfig {
                reason: "cycle length and cycle count must be positive".to_string(),
            });
        }
        let protocol = ProtocolConfig::builder()
            .cycle_length_ms(config.cycle_length_ms)
            // One long epoch: the cluster helper measures raw convergence.
            .cycles_per_epoch(config.cycles.saturating_mul(10).max(1))
            .build()
            .map_err(|e| NetError::InvalidConfig {
                reason: e.to_string(),
            })?;

        let seeds = SeedSequence::new(1_000);
        let endpoints = InMemoryNetwork::create(values.len());
        let runtimes: Vec<GossipRuntime> = endpoints
            .into_iter()
            .zip(values.iter())
            .enumerate()
            .map(|(i, (endpoint, &value))| {
                let env = NodeEnv::real(endpoint, seeds.seed_for_run(i as u64))
                    .with_sampler(sampler, &seeds)?
                    .with_faults(plan.clone(), &seeds)?;
                Ok(GossipRuntime::spawn_env(env, protocol, value))
            })
            .collect::<Result<_, NetError>>()?;

        // Wait on protocol progress, not wall-clock guesses: the nominal run
        // time assumes the node threads are scheduled promptly, which a
        // loaded machine (e.g. a parallel test run) does not guarantee. Keep
        // waiting until every node has crossed `cycles` cycle boundaries,
        // bounded by a generous deadline.
        let nominal = Duration::from_millis(config.cycle_length_ms * u64::from(config.cycles) + 50);
        std::thread::sleep(nominal);
        // lint-allow(nondeterminism): live-runtime liveness deadline; protocol state never reads it
        let deadline = Instant::now() + nominal.saturating_mul(10) + Duration::from_secs(2);
        // lint-allow(nondeterminism): live-runtime liveness deadline; protocol state never reads it
        while Instant::now() < deadline {
            let slowest = runtimes
                .iter()
                .map(|runtime| runtime.handle().stats().cycles_run)
                .min()
                .unwrap_or(0);
            if slowest >= u64::from(config.cycles) {
                break;
            }
            std::thread::sleep(Duration::from_millis(config.cycle_length_ms.clamp(1, 20)));
        }

        let estimates: Vec<f64> = runtimes
            .iter()
            .map(|runtime| runtime.handle().estimate().unwrap_or(f64::NAN))
            .collect();
        let mut stats = RuntimeStats::default();
        for runtime in &runtimes {
            stats.merge(runtime.handle().stats());
        }
        for runtime in runtimes {
            runtime.shutdown();
        }
        Ok(ClusterReport { estimates, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_converges_and_conserves_the_sum() {
        // With overlapping pushes rejected through the core's message path,
        // the only non-conserving events left are replies still in flight at
        // the readout — so the cluster-wide sum must track the true sum
        // tightly (the old runtime needed a 15% accuracy bar here).
        let values = [0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0];
        let true_mean = values.iter().sum::<f64>() / values.len() as f64;
        let true_sum: f64 = values.iter().sum();
        let report = GossipCluster::run_in_memory(
            &values,
            ClusterConfig {
                cycle_length_ms: 5,
                cycles: 40,
            },
        )
        .unwrap();
        assert_eq!(report.estimates.len(), values.len());
        for estimate in &report.estimates {
            assert!(
                (estimate - true_mean).abs() < 0.05 * true_mean,
                "estimate {estimate} should be within 5% of {true_mean}"
            );
        }
        let min = report
            .estimates
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let max = report
            .estimates
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            max - min < 2.0,
            "estimates must agree with each other, spread {}",
            max - min
        );
        let sum: f64 = report.estimates.iter().sum();
        assert!(
            (sum - true_sum).abs() < 0.01 * true_sum,
            "mass conservation: sum {sum} must track {true_sum}"
        );
        assert!(report.stats.exchanges_started > 0);
        assert!(report.stats.exchanges_completed > 0);
        assert_eq!(report.stats.exchanges_vetoed, 0);
        assert_eq!(report.stats.messages_lost, 0);
        assert_eq!(report.stats.decode_errors, 0);
    }

    #[test]
    fn invalid_cluster_configurations_are_rejected() {
        assert!(GossipCluster::run_in_memory(
            &[],
            ClusterConfig {
                cycle_length_ms: 5,
                cycles: 10
            }
        )
        .is_err());
        assert!(GossipCluster::run_in_memory(
            &[1.0],
            ClusterConfig {
                cycle_length_ms: 0,
                cycles: 10
            }
        )
        .is_err());
        assert!(GossipCluster::run_in_memory(
            &[1.0],
            ClusterConfig {
                cycle_length_ms: 5,
                cycles: 0
            }
        )
        .is_err());
        // Simulator-grade knob validation surfaces through the same path.
        let config = ClusterConfig {
            cycle_length_ms: 5,
            cycles: 10,
        };
        assert!(GossipCluster::run_with(
            &[1.0, 2.0],
            config,
            SamplerConfig::Newscast { cache_size: 0 },
            FaultPlan::none(),
        )
        .is_err());
        assert!(GossipCluster::run_with(
            &[1.0, 2.0],
            config,
            SamplerConfig::UniformComplete,
            FaultPlan::with_link_failure(1.5),
        )
        .is_err());
    }

    #[test]
    fn simulator_fault_plan_and_sampler_plug_into_the_live_cluster() {
        // The exact values a GossipSimulation takes — a NEWSCAST sampler
        // config and a FaultPlan with loss and dead links — drive the live
        // threaded cluster unchanged, and the typed counters surface the
        // injected failures.
        let values: Vec<f64> = (0..8).map(|i| 10.0 * i as f64).collect();
        let true_mean = values.iter().sum::<f64>() / values.len() as f64;
        let plan = FaultPlan {
            link_failure: 0.1,
            ..FaultPlan::with_message_loss(0.05)
        };
        let report = GossipCluster::run_with(
            &values,
            ClusterConfig {
                cycle_length_ms: 5,
                cycles: 60,
            },
            SamplerConfig::newscast(),
            plan,
        )
        .unwrap();
        assert!(
            report.stats.messages_lost > 0 || report.stats.exchanges_vetoed > 0,
            "the fault lab must visibly act on the live path: {:?}",
            report.stats
        );
        // Faults slow convergence but must not prevent consensus.
        let min = report
            .estimates
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let max = report
            .estimates
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            max - min < 0.5 * true_mean,
            "estimates must still contract under faults, spread {}",
            max - min
        );
    }

    #[test]
    fn node_handle_exposes_state_counters_and_accepts_value_updates() {
        let endpoints = InMemoryNetwork::create(2);
        let mut endpoints = endpoints.into_iter();
        let config = ProtocolConfig::builder()
            .cycle_length_ms(5)
            .cycles_per_epoch(1_000)
            .build()
            .unwrap();
        let a = GossipRuntime::spawn(endpoints.next().unwrap(), config, 4.0, 1);
        let b = GossipRuntime::spawn(endpoints.next().unwrap(), config, 8.0, 2);
        let handle = a.handle();
        assert_eq!(handle.id(), NodeId::new(0));
        std::thread::sleep(Duration::from_millis(100));
        let estimate = handle.estimate().unwrap();
        assert!((estimate - 6.0).abs() < 1.0, "estimate {estimate}");
        assert_eq!(handle.current_epoch(), 0);
        let stats = handle.stats();
        assert!(stats.exchanges_started > 0, "{stats:?}");
        assert!(stats.exchanges_completed > 0, "{stats:?}");
        assert_eq!(stats.decode_errors, 0);
        handle.set_local_value(10.0);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn shutdown_via_drop_does_not_hang() {
        let endpoints = InMemoryNetwork::create(2);
        let config = ProtocolConfig::builder()
            .cycle_length_ms(2)
            .cycles_per_epoch(1_000)
            .build()
            .unwrap();
        let runtimes: Vec<GossipRuntime> = endpoints
            .into_iter()
            .map(|e| GossipRuntime::spawn(e, config, 1.0, 7))
            .collect();
        std::thread::sleep(Duration::from_millis(20));
        drop(runtimes);
    }

    #[test]
    fn recv_failures_are_counted_not_swallowed() {
        // A transport whose receive path yields decode errors: the runtime
        // must keep running and surface the failures through the counters.
        #[derive(Debug)]
        struct FlakyTransport {
            inner: InMemoryNetwork,
            polls: std::sync::atomic::AtomicU64,
        }
        impl Transport for FlakyTransport {
            fn local_node(&self) -> NodeId {
                self.inner.local_node()
            }
            fn peers(&self) -> Vec<NodeId> {
                self.inner.peers()
            }
            fn send(&self, message: &GossipMessage) -> Result<(), NetError> {
                self.inner.send(message)
            }
            fn recv_timeout(&self, timeout: Duration) -> Result<Option<GossipMessage>, NetError> {
                let n = self.polls.fetch_add(1, Ordering::Relaxed);
                if n % 7 == 3 {
                    return Err(NetError::Decode {
                        reason: "corrupt frame".to_string(),
                    });
                }
                self.inner.recv_timeout(timeout)
            }
        }
        let mut endpoints = InMemoryNetwork::create(2).into_iter();
        let config = ProtocolConfig::builder()
            .cycle_length_ms(5)
            .cycles_per_epoch(1_000)
            .build()
            .unwrap();
        let flaky = FlakyTransport {
            inner: endpoints.next().unwrap(),
            polls: std::sync::atomic::AtomicU64::new(0),
        };
        let a = GossipRuntime::spawn(flaky, config, 4.0, 1);
        let b = GossipRuntime::spawn(endpoints.next().unwrap(), config, 8.0, 2);
        std::thread::sleep(Duration::from_millis(100));
        let stats = a.handle().stats();
        assert!(stats.decode_errors > 0, "{stats:?}");
        // The protocol keeps converging around the failures.
        let estimate = a.handle().estimate().unwrap();
        assert!((estimate - 6.0).abs() < 2.0, "estimate {estimate}");
        a.shutdown();
        b.shutdown();
    }
}
