//! Threaded node runtime and single-process cluster helper.

use crate::{InMemoryNetwork, NetError, Transport};
use aggregate_core::node::ProtocolNode;
use aggregate_core::ProtocolConfig;
use overlay_topology::NodeId;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Shared, thread-safe view of a running node's state.
#[derive(Debug, Clone)]
pub struct NodeHandle {
    id: NodeId,
    node: Arc<Mutex<ProtocolNode>>,
}

impl NodeHandle {
    /// The node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's current estimate of the aggregate.
    pub fn estimate(&self) -> Option<f64> {
        self.node.lock().estimate()
    }

    /// The epoch the node is currently executing.
    pub fn current_epoch(&self) -> u64 {
        self.node.lock().current_epoch()
    }

    /// Updates the node's local attribute value (picked up at the next epoch
    /// restart, as in the paper's adaptive protocol).
    pub fn set_local_value(&self, value: f64) {
        self.node.lock().set_local_value(value);
    }
}

/// One node of a deployed gossip network: a dedicated OS thread that runs the
/// active cycle of Figure 1 (wait `Δt`, pick a random peer, push) and serves
/// incoming exchanges in between.
#[derive(Debug)]
pub struct GossipRuntime {
    handle: NodeHandle,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl GossipRuntime {
    /// Spawns the runtime thread for one node.
    ///
    /// `transport` must belong to the node (its `local_node` defines the
    /// node's identity); `config.cycle_length_ms()` sets `Δt`.
    pub fn spawn<T: Transport + 'static>(
        transport: T,
        config: ProtocolConfig,
        local_value: f64,
        seed: u64,
    ) -> GossipRuntime {
        let id = transport.local_node();
        let node = Arc::new(Mutex::new(ProtocolNode::new(id, config, local_value)));
        let stop = Arc::new(AtomicBool::new(false));
        let handle = NodeHandle {
            id,
            node: Arc::clone(&node),
        };
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            run_node_loop(transport, node, config, seed, &stop_flag);
        });
        GossipRuntime {
            handle,
            stop,
            thread: Some(thread),
        }
    }

    /// A cloneable handle for observing and steering the node.
    pub fn handle(&self) -> NodeHandle {
        self.handle.clone()
    }

    /// Signals the runtime thread to stop and waits for it to finish.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for GossipRuntime {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn run_node_loop<T: Transport>(
    transport: T,
    node: Arc<Mutex<ProtocolNode>>,
    config: ProtocolConfig,
    seed: u64,
    stop: &AtomicBool,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let cycle_length = Duration::from_millis(config.cycle_length_ms());
    let poll_interval = Duration::from_millis(1).min(cycle_length);
    // Random initial phase so nodes do not fire in lock-step.
    let mut next_cycle = Instant::now() + cycle_length.mul_f64(rng.gen_range(0.0..1.0));
    let peers = transport.peers();

    while !stop.load(Ordering::SeqCst) {
        // Serve incoming exchanges until the next cycle boundary.
        let now = Instant::now();
        let wait = if next_cycle > now {
            (next_cycle - now).min(poll_interval)
        } else {
            Duration::ZERO
        };
        match transport.recv_timeout(wait) {
            Ok(Some(message)) => {
                let reply = node.lock().handle_message(message);
                if let Some(reply) = reply {
                    let _ = transport.send(&reply);
                }
            }
            Ok(None) => {}
            Err(_) => {
                // Transport failure: back off briefly and keep serving; the
                // protocol tolerates lost exchanges.
                std::thread::sleep(poll_interval);
            }
        }

        // Active half of the protocol, once per Δt.
        if Instant::now() >= next_cycle {
            if !peers.is_empty() {
                let peer = peers[rng.gen_range(0..peers.len())];
                let pushes = node.lock().begin_exchange(peer);
                for push in pushes {
                    let _ = transport.send(&push);
                }
            }
            node.lock().end_cycle();
            next_cycle += cycle_length;
        }
    }
}

/// Configuration of a [`GossipCluster`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Cycle length `Δt` in milliseconds.
    pub cycle_length_ms: u64,
    /// Number of cycles to let the cluster run before reading the estimates.
    pub cycles: u32,
}

/// Convenience driver that runs a whole gossip network inside one process.
#[derive(Debug)]
pub struct GossipCluster;

impl GossipCluster {
    /// Runs `values.len()` nodes over the in-memory transport for
    /// `config.cycles` cycles of averaging and returns each node's final
    /// estimate (in node order).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidConfig`] for empty inputs or a zero cycle
    /// length.
    pub fn run_in_memory(values: &[f64], config: ClusterConfig) -> Result<Vec<f64>, NetError> {
        if values.is_empty() {
            return Err(NetError::InvalidConfig {
                reason: "at least one node is required".to_string(),
            });
        }
        if config.cycle_length_ms == 0 || config.cycles == 0 {
            return Err(NetError::InvalidConfig {
                reason: "cycle length and cycle count must be positive".to_string(),
            });
        }
        let protocol = ProtocolConfig::builder()
            .cycle_length_ms(config.cycle_length_ms)
            // One long epoch: the cluster helper measures raw convergence.
            .cycles_per_epoch(config.cycles.saturating_mul(10).max(1))
            .build()
            .map_err(|e| NetError::InvalidConfig {
                reason: e.to_string(),
            })?;

        let endpoints = InMemoryNetwork::create(values.len());
        let runtimes: Vec<GossipRuntime> = endpoints
            .into_iter()
            .zip(values.iter())
            .enumerate()
            .map(|(i, (endpoint, &value))| {
                GossipRuntime::spawn(endpoint, protocol, value, 1_000 + i as u64)
            })
            .collect();

        let run_time =
            Duration::from_millis(config.cycle_length_ms * u64::from(config.cycles) + 50);
        std::thread::sleep(run_time);

        let estimates = runtimes
            .iter()
            .map(|runtime| runtime.handle().estimate().unwrap_or(f64::NAN))
            .collect();
        for runtime in runtimes {
            runtime.shutdown();
        }
        Ok(estimates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_converges_to_the_true_average() {
        // Concurrent (overlapping) push–pull exchanges do not conserve the sum
        // exactly — an effect the paper's companion technical report discusses
        // — so the live runtime is held to a ~10 % accuracy bar here, while the
        // spread between nodes must still collapse (consensus is reached).
        let values = [0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0];
        let true_mean = values.iter().sum::<f64>() / values.len() as f64;
        let estimates = GossipCluster::run_in_memory(
            &values,
            ClusterConfig {
                cycle_length_ms: 5,
                cycles: 40,
            },
        )
        .unwrap();
        assert_eq!(estimates.len(), values.len());
        for estimate in &estimates {
            assert!(
                (estimate - true_mean).abs() < 0.15 * true_mean,
                "estimate {estimate} should be within 15% of {true_mean}"
            );
        }
        let min = estimates.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = estimates.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            max - min < 5.0,
            "estimates must agree with each other, spread {}",
            max - min
        );
    }

    #[test]
    fn invalid_cluster_configurations_are_rejected() {
        assert!(GossipCluster::run_in_memory(
            &[],
            ClusterConfig {
                cycle_length_ms: 5,
                cycles: 10
            }
        )
        .is_err());
        assert!(GossipCluster::run_in_memory(
            &[1.0],
            ClusterConfig {
                cycle_length_ms: 0,
                cycles: 10
            }
        )
        .is_err());
        assert!(GossipCluster::run_in_memory(
            &[1.0],
            ClusterConfig {
                cycle_length_ms: 5,
                cycles: 0
            }
        )
        .is_err());
    }

    #[test]
    fn node_handle_exposes_state_and_accepts_value_updates() {
        let endpoints = InMemoryNetwork::create(2);
        let mut endpoints = endpoints.into_iter();
        let config = ProtocolConfig::builder()
            .cycle_length_ms(5)
            .cycles_per_epoch(1_000)
            .build()
            .unwrap();
        let a = GossipRuntime::spawn(endpoints.next().unwrap(), config, 4.0, 1);
        let b = GossipRuntime::spawn(endpoints.next().unwrap(), config, 8.0, 2);
        let handle = a.handle();
        assert_eq!(handle.id(), NodeId::new(0));
        std::thread::sleep(Duration::from_millis(100));
        let estimate = handle.estimate().unwrap();
        assert!((estimate - 6.0).abs() < 1.0, "estimate {estimate}");
        assert_eq!(handle.current_epoch(), 0);
        handle.set_local_value(10.0);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn shutdown_via_drop_does_not_hang() {
        let endpoints = InMemoryNetwork::create(2);
        let config = ProtocolConfig::builder()
            .cycle_length_ms(2)
            .cycles_per_epoch(1_000)
            .build()
            .unwrap();
        let runtimes: Vec<GossipRuntime> = endpoints
            .into_iter()
            .map(|e| GossipRuntime::spawn(e, config, 1.0, 7))
            .collect();
        std::thread::sleep(Duration::from_millis(20));
        drop(runtimes);
    }
}
