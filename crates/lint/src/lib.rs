//! gossip-lint: the workspace's determinism & concurrency static-analysis
//! suite.
//!
//! Every headline number in this reproduction — the Section 3 convergence
//! factors, the shard/worker bit-identity pins, the simulator↔`VirtualCluster`
//! lockstep identity — rests on invariants no compiler checks: protocol code
//! draws randomness only from labelled `SeedSequence` streams, never consults
//! wall clocks or unordered containers, and merges concurrent results in a
//! fixed order. `gossip-lint` enforces those invariants *statically*, before
//! a single cycle runs:
//!
//! ```text
//! cargo run -p gossip-lint -- check                  # all rules, human output
//! cargo run -p gossip-lint -- check --json report.json
//! cargo run -p gossip-lint -- check --check-registry # + SEED_STREAMS.md drift
//! cargo run -p gossip-lint -- write-registry         # regenerate SEED_STREAMS.md
//! cargo run -p gossip-lint -- rules                  # print the catalog
//! ```
//!
//! Violations are suppressed per-line with `// lint-allow(<rule>): <reason>`
//! (trailing, or standalone directly above the offending line). Allows are
//! themselves checked: a reason is mandatory, and an allow whose target no
//! longer violates the rule is reported as `stale-allow` so suppressions
//! cannot outlive their justification. See the rule catalog in [`rules`] and
//! the registry generator in [`registry`].

#![forbid(unsafe_code)]

pub mod json;
pub mod registry;
pub mod rules;
pub mod source;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use rules::seed_streams::StreamCatalog;
use rules::Finding;
use source::SourceFile;

/// The registry file name at the workspace root.
pub const REGISTRY_FILE: &str = "SEED_STREAMS.md";

/// A finding that was suppressed by a `lint-allow` annotation.
#[derive(Debug, Clone)]
pub struct Suppressed {
    /// The suppressed violation.
    pub finding: Finding,
    /// The annotation's stated justification.
    pub reason: String,
}

/// The outcome of a full `check` run.
#[derive(Debug, Default)]
pub struct Report {
    /// Active findings (violations, stale/malformed allows, registry drift),
    /// sorted by file, line, rule.
    pub findings: Vec<Finding>,
    /// Violations silenced by a valid `lint-allow`.
    pub suppressed: Vec<Suppressed>,
    /// Number of `.rs` files scanned.
    pub files_checked: usize,
}

impl Report {
    /// True when nothing is wrong: no findings at all.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// The lint engine: a loaded workspace plus the rule catalog.
#[derive(Debug)]
pub struct Engine {
    root: PathBuf,
    files: Vec<SourceFile>,
}

impl Engine {
    /// Loads every `crates/*/src/**/*.rs` under `root`, in sorted order.
    ///
    /// # Errors
    ///
    /// Returns any filesystem error encountered while walking or reading.
    pub fn load(root: &Path) -> io::Result<Engine> {
        let crates_dir = root.join("crates");
        let mut paths: Vec<PathBuf> = Vec::new();
        for entry in fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                collect_rs(&src, &mut paths)?;
            }
        }
        paths.sort();
        let mut files = Vec::with_capacity(paths.len());
        for path in paths {
            let text = fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            files.push(SourceFile::parse(&rel, &text));
        }
        Ok(Engine {
            root: root.to_path_buf(),
            files,
        })
    }

    /// The workspace root this engine was loaded from.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Runs every rule and resolves `lint-allow` suppressions.
    pub fn check(&self) -> Report {
        let (report, _) = self.check_with_catalog();
        report
    }

    /// [`Engine::check`], also returning the seed-stream catalog (for
    /// registry generation without a second scan).
    pub fn check_with_catalog(&self) -> (Report, StreamCatalog) {
        let mut raw: Vec<Finding> = Vec::new();
        for file in &self.files {
            rules::nondeterminism::check_file(file, &mut raw);
            rules::unwrap_free::check_file(file, &mut raw);
            rules::merge_order::check_file(file, &mut raw);
            rules::observer_effect::check_file(file, &mut raw);
        }
        let catalog = rules::seed_streams::check_workspace(&self.files, &mut raw);
        rules::unsafe_safety::check_workspace(&self.files, &mut raw);

        let mut report = Report {
            files_checked: self.files.len(),
            ..Report::default()
        };

        // Resolve suppressions: an allow matches a finding when the rule name
        // and target line agree. Allows without a reason are malformed;
        // allows that match nothing are stale.
        for file in &self.files {
            for allow in &file.allows {
                if allow.reason.is_empty() {
                    report.findings.push(Finding::new(
                        &file.rel,
                        allow.line,
                        "malformed-allow",
                        format!(
                            "lint-allow({}) has no reason — write \
                             `// lint-allow({}): <why this is sound>`",
                            allow.rule, allow.rule
                        ),
                    ));
                }
            }
        }
        for finding in raw {
            let allow = self.files.iter().find_map(|file| {
                if file.rel != finding.file {
                    return None;
                }
                file.allows
                    .iter()
                    .find(|a| a.rule == finding.rule && a.target_line == finding.line)
            });
            match allow {
                Some(a) if !a.reason.is_empty() => report.suppressed.push(Suppressed {
                    finding,
                    reason: a.reason.clone(),
                }),
                _ => report.findings.push(finding),
            }
        }
        for file in &self.files {
            for allow in &file.allows {
                let used = report.suppressed.iter().any(|s| {
                    s.finding.file == file.rel
                        && s.finding.rule == allow.rule
                        && s.finding.line == allow.target_line
                });
                if !used && !allow.reason.is_empty() {
                    report.findings.push(Finding::new(
                        &file.rel,
                        allow.line,
                        "stale-allow",
                        format!(
                            "lint-allow({}) no longer matches a violation on line {} — \
                             remove it so suppressions cannot outlive their justification",
                            allow.rule, allow.target_line
                        ),
                    ));
                }
            }
        }

        report.findings.sort();
        report.suppressed.sort_by(|a, b| a.finding.cmp(&b.finding));
        (report, catalog)
    }

    /// Renders the current seed-stream registry contents.
    pub fn registry_markdown(&self) -> String {
        let (_, catalog) = self.check_with_catalog();
        registry::render(&catalog)
    }

    /// Compares the generated registry against the committed
    /// [`REGISTRY_FILE`]; returns a finding when they differ.
    pub fn registry_drift(&self, catalog: &StreamCatalog) -> io::Result<Option<Finding>> {
        let expected = registry::render(catalog);
        let path = self.root.join(REGISTRY_FILE);
        let actual = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e),
        };
        if normalize(&actual) == normalize(&expected) {
            Ok(None)
        } else {
            Ok(Some(Finding::new(
                REGISTRY_FILE,
                1,
                "seed-streams",
                "SEED_STREAMS.md is out of date with the sources — regenerate it with \
                 `cargo run -p gossip-lint -- write-registry`"
                    .to_string(),
            )))
        }
    }
}

/// Line-ending/trailing-whitespace-insensitive comparison form.
fn normalize(text: &str) -> String {
    text.replace("\r\n", "\n").trim_end().to_string()
}

/// Recursively collects `.rs` files under `dir`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Walks up from `start` to the first directory that looks like the
/// workspace root (has `Cargo.toml` and a `crates/` directory).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d.to_path_buf());
        }
        dir = d.parent();
    }
    None
}
