//! Source model: lexes a `.rs` file just far enough for line-oriented rules.
//!
//! The scanner classifies every character as code, comment or string-literal
//! content and derives three line-aligned views:
//!
//! * [`SourceFile::code`] — comments and string/char contents blanked out
//!   (delimiters kept), so pattern rules never fire inside prose or data;
//! * [`SourceFile::code_with_strings`] — only comments blanked, for rules
//!   that must read string literals (the seed-stream registry);
//! * [`SourceFile::comments`] — the comment text of each line, for
//!   `lint-allow` and `SAFETY:` parsing.
//!
//! On top of the views it marks `#[cfg(test)]` / `#[test]` item regions
//! (brace-balanced over the code view) so library rules can skip test code,
//! and extracts [`Allow`] annotations.

use std::fmt;

/// One `// lint-allow(<rule>): <reason>` annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// Rule name inside the parentheses.
    pub rule: String,
    /// Justification after the colon (trimmed; may be empty, which the
    /// driver reports as malformed).
    pub reason: String,
    /// 1-based line the annotation appears on.
    pub line: usize,
    /// 1-based line the annotation suppresses: the same line for a trailing
    /// comment, the next line carrying code for a standalone comment.
    pub target_line: usize,
}

/// A lexed source file plus the derived views the rules consume.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    /// The crate directory name under `crates/` (e.g. `sim`).
    pub crate_name: String,
    /// Raw lines, without terminators.
    pub lines: Vec<String>,
    /// Lines with comments and string/char contents blanked to spaces.
    pub code: Vec<String>,
    /// Lines with only comments blanked (string literals preserved).
    pub code_with_strings: Vec<String>,
    /// Per-line comment text (characters the lexer classified as comment).
    pub comments: Vec<String>,
    /// Per-line flag: inside a `#[cfg(test)]` / `#[test]` item.
    pub is_test_line: Vec<bool>,
    /// All `lint-allow` annotations found in comments.
    pub allows: Vec<Allow>,
}

impl fmt::Display for SourceFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} lines)", self.rel, self.lines.len())
    }
}

/// Character classes assigned by the lexer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    /// Executable source text, including string delimiters.
    Code,
    /// Comment text (the `//` / `/* */` markers included).
    Comment,
    /// The contents of a string, raw-string, char or byte literal.
    StrContent,
}

/// Lexer state across the whole file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    /// Nesting depth of `/* */` (Rust block comments nest).
    BlockComment(u32),
    /// Inside `"…"`.
    Str,
    /// Inside `r##"…"##` with the given hash count.
    RawStr(u32),
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Classifies every character of `text`.
fn classify(text: &str) -> Vec<(char, Class)> {
    let chars: Vec<char> = text.chars().collect();
    let mut out: Vec<(char, Class)> = Vec::with_capacity(chars.len());
    let mut state = State::Code;
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match state {
            State::Code => {
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    out.push((c, Class::Comment));
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    out.push((c, Class::Comment));
                } else if c == '"' {
                    state = State::Str;
                    out.push((c, Class::Code));
                } else if (c == 'r' || c == 'b')
                    && !out
                        .last()
                        .map(|(p, cl)| *cl == Class::Code && is_ident(*p))
                        .unwrap_or(false)
                {
                    // Possible raw / byte literal prefix: r"…", r#"…"#, b"…",
                    // br#"…"#. Scan the prefix; fall through to plain code if
                    // it is just an identifier character.
                    let mut j = i;
                    if c == 'b' && chars.get(j + 1) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    let mut k = j + 1;
                    while chars.get(k) == Some(&'#') {
                        hashes += 1;
                        k += 1;
                    }
                    if chars.get(k) == Some(&'"') && (hashes > 0 || chars[j] == 'r' || c == 'b') {
                        // Emit the prefix and opening quote as code.
                        for &p in &chars[i..=k] {
                            out.push((p, Class::Code));
                        }
                        i = k + 1;
                        state = if hashes > 0 || chars[j] == 'r' {
                            State::RawStr(hashes)
                        } else {
                            State::Str
                        };
                        continue;
                    }
                    out.push((c, Class::Code));
                } else if c == '\'' {
                    // Char literal vs lifetime: 'x' / '\n' are literals,
                    // 'static is a lifetime.
                    if next == Some('\\') {
                        // Escape: mask until the closing quote.
                        out.push((c, Class::Code));
                        let mut j = i + 1;
                        while j < chars.len() && chars[j] != '\'' {
                            out.push((chars[j], Class::StrContent));
                            j += 1;
                        }
                        if j < chars.len() {
                            out.push((chars[j], Class::Code));
                        }
                        i = j + 1;
                        continue;
                    } else if chars.get(i + 2) == Some(&'\'') && next.is_some() {
                        out.push((c, Class::Code));
                        out.push((chars[i + 1], Class::StrContent));
                        out.push((chars[i + 2], Class::Code));
                        i += 3;
                        continue;
                    }
                    out.push((c, Class::Code));
                } else {
                    out.push((c, Class::Code));
                }
            }
            State::LineComment => {
                if c == '\n' {
                    state = State::Code;
                    out.push((c, Class::Code));
                } else {
                    out.push((c, Class::Comment));
                }
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    out.push((c, Class::Comment));
                    out.push(('/', Class::Comment));
                    i += 2;
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    continue;
                } else if c == '/' && next == Some('*') {
                    out.push((c, Class::Comment));
                    out.push(('*', Class::Comment));
                    i += 2;
                    state = State::BlockComment(depth + 1);
                    continue;
                }
                out.push((c, Class::Comment));
            }
            State::Str => {
                if c == '\\' {
                    out.push((c, Class::StrContent));
                    if let Some(n) = next {
                        out.push((n, Class::StrContent));
                        i += 2;
                        continue;
                    }
                } else if c == '"' {
                    out.push((c, Class::Code));
                    state = State::Code;
                } else {
                    out.push((c, Class::StrContent));
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for h in 0..hashes as usize {
                        if chars.get(i + 1 + h) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        out.push((c, Class::Code));
                        for h in 0..hashes as usize {
                            out.push((chars[i + 1 + h], Class::Code));
                        }
                        i += 1 + hashes as usize;
                        state = State::Code;
                        continue;
                    }
                }
                out.push((c, Class::StrContent));
            }
        }
        i += 1;
    }
    out
}

/// Splits classified characters into the three line-aligned views.
fn views(classified: &[(char, Class)]) -> (Vec<String>, Vec<String>, Vec<String>, Vec<String>) {
    let mut lines = vec![String::new()];
    let mut code = vec![String::new()];
    let mut code_with_strings = vec![String::new()];
    let mut comments = vec![String::new()];
    for &(c, class) in classified {
        if c == '\n' {
            lines.push(String::new());
            code.push(String::new());
            code_with_strings.push(String::new());
            comments.push(String::new());
            continue;
        }
        let last = lines.len() - 1;
        lines[last].push(c);
        match class {
            Class::Code => {
                code[last].push(c);
                code_with_strings[last].push(c);
            }
            Class::StrContent => {
                code[last].push(' ');
                code_with_strings[last].push(c);
            }
            Class::Comment => {
                code[last].push(' ');
                code_with_strings[last].push(' ');
                comments[last].push(c);
            }
        }
    }
    (lines, code, code_with_strings, comments)
}

/// Marks the line span of every `#[cfg(test)]` / `#[cfg(any(test…))]` /
/// `#[test]` item by balancing braces over the code view.
fn mark_test_regions(code: &[String]) -> Vec<bool> {
    let mut marked = vec![false; code.len()];
    for (idx, line) in code.iter().enumerate() {
        let t = line.trim();
        let is_cfg_test = t.contains("#[cfg(test)]")
            || t.contains("#[cfg(any(test")
            || t.contains("#[cfg(all(test")
            || t.contains("#[test]");
        if !is_cfg_test {
            continue;
        }
        // Find the end of the annotated item: the first top-level `;` or the
        // close of the first `{ … }` block, starting after the attribute.
        let mut depth: i64 = 0;
        let mut seen_open = false;
        let mut end = idx;
        // Skip past the attribute itself on the marker line.
        let start_col = line.find(']').map(|p| p + 1).unwrap_or(0);
        'outer: for (j, l) in code.iter().enumerate().skip(idx) {
            let s = if j == idx {
                &l[start_col.min(l.len())..]
            } else {
                l
            };
            for ch in s.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        seen_open = true;
                    }
                    '}' => {
                        depth -= 1;
                        if seen_open && depth <= 0 {
                            end = j;
                            break 'outer;
                        }
                    }
                    ';' if !seen_open && depth == 0 => {
                        end = j;
                        break 'outer;
                    }
                    _ => {}
                }
            }
            end = j;
        }
        for flag in marked.iter_mut().take(end + 1).skip(idx) {
            *flag = true;
        }
    }
    marked
}

/// Extracts `lint-allow(<rule>): <reason>` annotations from comment text.
fn extract_allows(code: &[String], comments: &[String]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for (idx, comment) in comments.iter().enumerate() {
        // Doc comments only *describe* the annotation syntax; a live
        // annotation is a plain `//` comment.
        let trimmed = comment.trim_start();
        if trimmed.starts_with("///") || trimmed.starts_with("//!") {
            continue;
        }
        let mut rest = comment.as_str();
        while let Some(pos) = rest.find("lint-allow(") {
            let after = &rest[pos + "lint-allow(".len()..];
            let Some(close) = after.find(')') else {
                break;
            };
            let rule = after[..close].trim().to_string();
            let tail = &after[close + 1..];
            let reason = tail
                .strip_prefix(':')
                .map(|r| {
                    // The reason runs to the end of the comment or the next
                    // annotation on the same line.
                    match r.find("lint-allow(") {
                        Some(p) => r[..p].trim_end_matches(['/', ' ']).trim().to_string(),
                        None => r.trim().to_string(),
                    }
                })
                .unwrap_or_default();
            let has_code = !code[idx].trim().is_empty();
            let target_line = if has_code {
                idx + 1
            } else {
                // Standalone comment: suppresses the next line carrying code.
                let mut target = idx + 2;
                for (j, l) in code.iter().enumerate().skip(idx + 1) {
                    if !l.trim().is_empty() {
                        target = j + 1;
                        break;
                    }
                }
                target
            };
            allows.push(Allow {
                rule,
                reason,
                line: idx + 1,
                target_line,
            });
            rest = tail;
        }
    }
    allows
}

impl SourceFile {
    /// Lexes `text` into a source model.
    ///
    /// `rel` is the `/`-separated path relative to the workspace root; the
    /// crate name is derived from its `crates/<name>/…` prefix (empty when
    /// the file lives elsewhere).
    pub fn parse(rel: &str, text: &str) -> SourceFile {
        let classified = classify(text);
        let (mut lines, mut code, mut code_with_strings, mut comments) = views(&classified);
        // A trailing newline leaves one empty phantom line; drop it so line
        // counts match editors.
        if lines.last().is_some_and(|l| l.is_empty()) && text.ends_with('\n') {
            lines.pop();
            code.pop();
            code_with_strings.pop();
            comments.pop();
        }
        let is_test_line = mark_test_regions(&code);
        let allows = extract_allows(&code, &comments);
        let crate_name = rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("")
            .to_string();
        SourceFile {
            rel: rel.to_string(),
            crate_name,
            lines,
            code,
            code_with_strings,
            comments,
            is_test_line,
            allows,
        }
    }

    /// True when the 0-based line index sits inside a test item.
    pub fn in_test(&self, idx: usize) -> bool {
        self.is_test_line.get(idx).copied().unwrap_or(false)
    }
}

/// Finds `needle` in `haystack` at identifier boundaries; returns the byte
/// offset of the first such match.
pub fn find_token(haystack: &str, needle: &str) -> Option<usize> {
    let mut start = 0usize;
    while let Some(pos) = haystack[start..].find(needle) {
        let abs = start + pos;
        let before_ok = abs == 0 || !haystack[..abs].chars().next_back().is_some_and(is_ident);
        let after = abs + needle.len();
        let after_ok =
            after >= haystack.len() || !haystack[after..].chars().next().is_some_and(is_ident);
        if before_ok && after_ok {
            return Some(abs);
        }
        start = abs + needle.len();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_and_strings() {
        let src = "let x = \"HashMap\"; // HashMap here\nlet y = 1; /* thread_rng */\n";
        let f = SourceFile::parse("crates/demo/src/lib.rs", src);
        assert!(!f.code[0].contains("HashMap"));
        assert!(f.code_with_strings[0].contains("HashMap"));
        assert!(f.comments[0].contains("HashMap"));
        assert!(!f.code[1].contains("thread_rng"));
        assert_eq!(f.crate_name, "demo");
    }

    #[test]
    fn raw_strings_and_chars_are_masked() {
        let src = "let a = r#\"Instant::now\"#;\nlet b = '\\n';\nlet c: &'static str = \"x\";\n";
        let f = SourceFile::parse("crates/demo/src/lib.rs", src);
        assert!(!f.code[0].contains("Instant::now"));
        assert!(f.code[2].contains("&'static str"));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn live2() {}\n";
        let f = SourceFile::parse("crates/demo/src/lib.rs", src);
        assert!(!f.in_test(0));
        assert!(f.in_test(1));
        assert!(f.in_test(3));
        assert!(f.in_test(4));
        assert!(!f.in_test(5));
    }

    #[test]
    fn allow_annotations_parse_trailing_and_standalone() {
        let src = "x.unwrap(); // lint-allow(unwrap): checked above\n// lint-allow(nondeterminism): telemetry only\ny();\n";
        let f = SourceFile::parse("crates/demo/src/lib.rs", src);
        assert_eq!(f.allows.len(), 2);
        assert_eq!(f.allows[0].rule, "unwrap");
        assert_eq!(f.allows[0].target_line, 1);
        assert_eq!(f.allows[1].rule, "nondeterminism");
        assert_eq!(f.allows[1].target_line, 3);
        assert_eq!(f.allows[1].reason, "telemetry only");
    }

    #[test]
    fn token_boundaries_respected() {
        assert!(find_token("use std::collections::HashMap;", "HashMap").is_some());
        assert!(find_token("MyHashMapLike", "HashMap").is_none());
        assert!(find_token("x.unwrap_or(0)", "unwrap").is_none());
        assert!(find_token("thread_rng()", "thread_rng").is_some());
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let src = "/* a /* b */ still comment */ fn real() {}\n";
        let f = SourceFile::parse("crates/demo/src/lib.rs", src);
        assert!(f.code[0].contains("fn real"));
        assert!(!f.code[0].contains("still"));
    }
}
