//! CLI entry point: `gossip-lint <check|write-registry|rules> [flags]`.
//!
//! Exit codes: `0` clean, `1` findings (or registry drift), `2` usage or
//! I/O error. See the crate docs ([`gossip_lint`]) for the full contract.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use gossip_lint::{find_workspace_root, json, Engine, REGISTRY_FILE};

const USAGE: &str = "\
gossip-lint — determinism & concurrency lints for this workspace

USAGE:
    gossip-lint check [--json <path>] [--check-registry] [--root <dir>]
    gossip-lint write-registry [--root <dir>]
    gossip-lint rules

`check` exits 0 when clean, 1 on any finding. Suppress a finding with
`// lint-allow(<rule>): <reason>`; stale or reason-less allows are findings
themselves.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("gossip-lint: {message}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<bool, String> {
    let Some(command) = args.first() else {
        return Err(format!("missing subcommand\n\n{USAGE}"));
    };
    match command.as_str() {
        "check" => check(&args[1..]),
        "write-registry" => write_registry(&args[1..]),
        "rules" => {
            print_rules();
            Ok(true)
        }
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(true)
        }
        other => Err(format!("unknown subcommand `{other}`\n\n{USAGE}")),
    }
}

fn parse_root(args: &[String]) -> Result<PathBuf, String> {
    if let Some(pos) = args.iter().position(|a| a == "--root") {
        let dir = args
            .get(pos + 1)
            .ok_or_else(|| "--root needs a directory".to_string())?;
        return Ok(PathBuf::from(dir));
    }
    let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    find_workspace_root(&cwd).ok_or_else(|| {
        "no workspace root (Cargo.toml + crates/) above cwd; pass --root".to_string()
    })
}

fn check(args: &[String]) -> Result<bool, String> {
    let root = parse_root(args)?;
    let engine = Engine::load(&root).map_err(|e| format!("loading {}: {e}", root.display()))?;
    let (mut report, catalog) = engine.check_with_catalog();

    if args.iter().any(|a| a == "--check-registry") {
        let drift = engine
            .registry_drift(&catalog)
            .map_err(|e| format!("reading {REGISTRY_FILE}: {e}"))?;
        if let Some(finding) = drift {
            report.findings.push(finding);
            report.findings.sort();
        }
    }

    if let Some(pos) = args.iter().position(|a| a == "--json") {
        let path = args
            .get(pos + 1)
            .ok_or_else(|| "--json needs a file path".to_string())?;
        std::fs::write(path, json::render(&report)).map_err(|e| format!("writing {path}: {e}"))?;
    }

    for finding in &report.findings {
        println!("{finding}");
    }
    println!(
        "gossip-lint: {} files checked, {} findings, {} suppressed by lint-allow",
        report.files_checked,
        report.findings.len(),
        report.suppressed.len()
    );
    Ok(report.is_clean())
}

fn write_registry(args: &[String]) -> Result<bool, String> {
    let root = parse_root(args)?;
    let engine = Engine::load(&root).map_err(|e| format!("loading {}: {e}", root.display()))?;
    let path = root.join(REGISTRY_FILE);
    std::fs::write(&path, engine.registry_markdown())
        .map_err(|e| format!("writing {}: {e}", path.display()))?;
    println!("gossip-lint: wrote {}", path.display());
    Ok(true)
}

fn print_rules() {
    println!("gossip-lint rule catalog:");
    println!(
        "  nondeterminism  no HashMap/HashSet, Instant::now/SystemTime::now, thread_rng,\n\
         \x20                 from_entropy in protocol crates (core, sim, faults, membership,\n\
         \x20                 net) outside tests; the effects module is the injection boundary\n\
         \x20                 and is exempt"
    );
    println!(
        "  seed-streams    SeedSequence labels must be string literals or documented consts,\n\
         \x20                 unique to one purpose; SEED_STREAMS.md is generated from them"
    );
    println!(
        "  unwrap          no unwrap/expect/panic! in non-test library code; allows must\n\
         \x20                 cite the invariant that makes the call infallible"
    );
    println!(
        "  merge-order     mailbox drains must restore a seq-sorted total order; no\n\
         \x20                 statistics merges inside spawned workers (crates/sim)"
    );
    println!(
        "  unsafe-safety   #![forbid(unsafe_code)] in every crate root without unsafe;\n\
         \x20                 // SAFETY: comments required where unsafe exists"
    );
    println!(
        "  observer-effect telemetry is write-only in protocol crates: no reads of\n\
         \x20                 sink/registry state that could steer the protocol"
    );
    println!(
        "  (driver)        stale-allow / malformed-allow: lint-allow annotations must\n\
         \x20                 carry a reason and match a live violation"
    );
}
