//! Rule `nondeterminism`: protocol paths must not consult unordered
//! containers, wall clocks or ambient entropy.
//!
//! Every simulator/runtime result in this repo is pinned bit-identical
//! across shard counts, worker counts and the simulator↔cluster boundary.
//! That only holds while protocol code draws randomness from labelled
//! `SeedSequence` streams, reads time through the
//! injected `Clock`, and never iterates a `HashMap`/`HashSet` (whose order
//! is unspecified). This rule flags, inside the protocol crates
//! ([`super::PROTOCOL_CRATES`]) and outside test code:
//!
//! * `HashMap` / `HashSet` — any mention; keyed lookups that are never
//!   iterated may carry a `lint-allow(nondeterminism)` stating exactly that;
//! * `Instant::now` / `SystemTime::now` — wall clocks (telemetry-only reads
//!   may be allowed with a reason);
//! * `thread_rng` / `from_entropy` / `from_os_rng` — ambient entropy, never
//!   acceptable in a protocol path (allows should cite why the value cannot
//!   reach protocol state).
//!
//! The effects module ([`super::EFFECTS_MODULE`]) is exempt: it is the
//! injection boundary itself.

use super::{Finding, EFFECTS_MODULE, PROTOCOL_CRATES};
use crate::source::{find_token, SourceFile};

/// Rule name as used in diagnostics and `lint-allow`.
pub const NAME: &str = "nondeterminism";

/// Forbidden tokens and the reason each undermines determinism.
const PATTERNS: &[(&str, &str)] = &[
    (
        "HashMap",
        "unordered std collection in a protocol path; iteration order is unspecified — use BTreeMap/Vec, or lint-allow with proof it is never iterated",
    ),
    (
        "HashSet",
        "unordered std collection in a protocol path; iteration order is unspecified — use BTreeSet/Vec, or lint-allow with proof it is never iterated",
    ),
    (
        "Instant::now",
        "wall clock in a protocol path; route time through the injected Clock, or lint-allow citing that only telemetry reads it",
    ),
    (
        "SystemTime::now",
        "wall clock in a protocol path; route time through the injected Clock, or lint-allow citing that only telemetry reads it",
    ),
    (
        "thread_rng",
        "ambient RNG in a protocol path; draw from a labelled SeedSequence stream instead",
    ),
    (
        "from_entropy",
        "OS entropy in a protocol path; seed from a labelled SeedSequence stream instead",
    ),
    (
        "from_os_rng",
        "OS entropy in a protocol path; seed from a labelled SeedSequence stream instead",
    ),
];

/// Runs the rule over one file, appending raw (pre-suppression) findings.
pub fn check_file(file: &SourceFile, out: &mut Vec<Finding>) {
    if !PROTOCOL_CRATES.contains(&file.crate_name.as_str()) || file.rel == EFFECTS_MODULE {
        return;
    }
    for (idx, line) in file.code.iter().enumerate() {
        if file.in_test(idx) {
            continue;
        }
        for (token, why) in PATTERNS {
            if find_token(line, token).is_some() {
                out.push(Finding::new(
                    &file.rel,
                    idx + 1,
                    NAME,
                    format!("`{token}`: {why}"),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, src: &str) -> Vec<Finding> {
        let f = SourceFile::parse(rel, src);
        let mut out = Vec::new();
        check_file(&f, &mut out);
        out
    }

    #[test]
    fn flags_each_pattern_in_protocol_crates() {
        let src =
            "use std::collections::HashMap;\nlet t = Instant::now();\nlet r = thread_rng();\n";
        let found = run("crates/sim/src/x.rs", src);
        assert_eq!(found.len(), 3);
        assert_eq!(found[0].line, 1);
        assert!(found[1].message.contains("Instant::now"));
    }

    #[test]
    fn ignores_non_protocol_crates_tests_and_effects() {
        let src = "use std::collections::HashMap;\n";
        assert!(run("crates/analysis/src/x.rs", src).is_empty());
        assert!(run("crates/core/src/effects.rs", src).is_empty());
        let test_src = "#[cfg(test)]\nmod tests {\n use std::collections::HashSet;\n}\n";
        assert!(run("crates/sim/src/x.rs", test_src).is_empty());
    }

    #[test]
    fn strings_and_comments_do_not_fire() {
        let src = "// HashMap in prose\nlet s = \"thread_rng\";\n";
        assert!(run("crates/net/src/x.rs", src).is_empty());
    }
}
