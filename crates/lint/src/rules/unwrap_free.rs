//! Rule `unwrap`: no `unwrap`/`expect`/`panic!` in non-test library code.
//!
//! Library crates surface failures as typed errors (`SimError`,
//! `TopologyError`, `NetError`, …) so embedders — benches, the fault lab,
//! the live cluster — decide the policy. A panic in a worker thread would
//! additionally poison the sharded engine's barrier protocol and abort a
//! whole run. Residual `unwrap`s must carry
//! `// lint-allow(unwrap): <invariant>` citing the invariant that makes
//! them infallible; test modules are exempt (a panic *is* a test failure).

use super::Finding;
use crate::source::SourceFile;

/// Rule name as used in diagnostics and `lint-allow`.
pub const NAME: &str = "unwrap";

/// Forbidden call shapes. `.unwrap()` is matched with its parentheses so
/// `unwrap_or*` variants never fire; `.expect(` excludes `expect_err`.
const PATTERNS: &[(&str, &str)] = &[
    (".unwrap()", "`unwrap` in library code: return a typed error, or lint-allow citing the invariant that makes this infallible"),
    (".expect(", "`expect` in library code: return a typed error, or lint-allow citing the invariant that makes this infallible"),
    ("panic!", "`panic!` in library code: return a typed error (a worker-thread panic poisons the sharded barrier protocol)"),
];

/// Runs the rule over one file, appending raw (pre-suppression) findings.
pub fn check_file(file: &SourceFile, out: &mut Vec<Finding>) {
    for (idx, line) in file.code.iter().enumerate() {
        if file.in_test(idx) {
            continue;
        }
        for (pattern, why) in PATTERNS {
            let mut rest: &str = line;
            let mut found = false;
            while let Some(pos) = rest.find(pattern) {
                // `.expect(` must not match `.expect_err(`; the paren in the
                // pattern already guarantees that, but keep boundary checks
                // for `panic!` (e.g. `core::panic!` matches, `dont_panic!`
                // must not).
                let before_ok = pattern.starts_with('.') || {
                    let upto = &rest[..pos];
                    !upto
                        .chars()
                        .next_back()
                        .is_some_and(|c| c.is_alphanumeric() || c == '_')
                };
                if before_ok {
                    found = true;
                    break;
                }
                rest = &rest[pos + pattern.len()..];
            }
            if found {
                out.push(Finding::new(&file.rel, idx + 1, NAME, (*why).to_string()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let f = SourceFile::parse("crates/demo/src/lib.rs", src);
        let mut out = Vec::new();
        check_file(&f, &mut out);
        out
    }

    #[test]
    fn flags_unwrap_expect_panic() {
        let found = run("a.unwrap();\nb.expect(\"msg\");\npanic!(\"boom\");\n");
        assert_eq!(found.len(), 3);
    }

    #[test]
    fn spares_unwrap_or_and_expect_err_and_tests() {
        assert!(run("a.unwrap_or(0);\nb.unwrap_or_else(|| 1);\nc.expect_err(\"e\");\n").is_empty());
        assert!(run("#[cfg(test)]\nmod tests {\n fn t() { a.unwrap(); }\n}\n").is_empty());
        assert!(run("my_panic!(\"not std\");\n").is_empty());
    }
}
