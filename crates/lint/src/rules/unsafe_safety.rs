//! Rule `unsafe-safety`: every crate forbids `unsafe`, or documents each use.
//!
//! The workspace already sets `unsafe_code = "forbid"` via
//! `[workspace.lints]`, but that is one manifest edit away from silently
//! disappearing for a single crate. This rule makes the guarantee local and
//! self-describing:
//!
//! * a crate whose sources contain no `unsafe` must carry
//!   `#![forbid(unsafe_code)]` at the top of its `lib.rs` (or `main.rs` for
//!   binaries), so the promise survives manifest refactors;
//! * a crate that *does* use `unsafe` (none today) must precede every
//!   `unsafe` token with a `// SAFETY: …` comment within
//!   [`SAFETY_WINDOW`] lines.

use std::collections::BTreeMap;

use super::Finding;
use crate::source::{find_token, SourceFile};

/// Rule name as used in diagnostics and `lint-allow`.
pub const NAME: &str = "unsafe-safety";

/// How many lines above an `unsafe` token the `SAFETY:` comment may sit.
pub const SAFETY_WINDOW: usize = 3;

/// Runs the rule across the whole workspace.
pub fn check_workspace(files: &[SourceFile], out: &mut Vec<Finding>) {
    // Per-crate: does any file contain `unsafe`? does the crate root carry
    // the forbid attribute?
    let mut has_unsafe: BTreeMap<&str, bool> = BTreeMap::new();
    let mut root_file: BTreeMap<&str, &SourceFile> = BTreeMap::new();
    let mut root_has_forbid: BTreeMap<&str, bool> = BTreeMap::new();

    for file in files {
        let crate_name = file.crate_name.as_str();
        if crate_name.is_empty() {
            continue;
        }
        let entry = has_unsafe.entry(crate_name).or_insert(false);
        for (idx, line) in file.code.iter().enumerate() {
            if find_token(line, "unsafe").is_some() {
                *entry = true;
                check_safety_comment(file, idx, out);
            }
        }
        let is_root = file.rel == format!("crates/{crate_name}/src/lib.rs")
            || file.rel == format!("crates/{crate_name}/src/main.rs");
        if is_root {
            let forbid = file
                .code
                .iter()
                .any(|l| l.contains("#![forbid(unsafe_code)]"));
            // lib.rs wins over main.rs when both exist.
            if file.rel.ends_with("lib.rs") || !root_has_forbid.contains_key(crate_name) {
                root_has_forbid.insert(crate_name, forbid);
                root_file.insert(crate_name, file);
            }
        }
    }

    for (crate_name, forbid) in &root_has_forbid {
        let uses_unsafe = has_unsafe.get(crate_name).copied().unwrap_or(false);
        if !forbid && !uses_unsafe {
            let file = root_file[crate_name];
            out.push(Finding::new(
                &file.rel,
                1,
                NAME,
                format!(
                    "crate `{crate_name}` contains no unsafe code but its root lacks \
                     `#![forbid(unsafe_code)]` — make the guarantee local and explicit"
                ),
            ));
        }
    }
}

fn check_safety_comment(file: &SourceFile, idx: usize, out: &mut Vec<Finding>) {
    let documented = (idx.saturating_sub(SAFETY_WINDOW)..=idx)
        .any(|j| file.comments.get(j).is_some_and(|c| c.contains("SAFETY:")));
    if !documented {
        out.push(Finding::new(
            &file.rel,
            idx + 1,
            NAME,
            format!(
                "`unsafe` without a `// SAFETY:` comment within {SAFETY_WINDOW} lines — \
                 state the invariant that makes this sound"
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(specs: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<SourceFile> = specs
            .iter()
            .map(|(rel, src)| SourceFile::parse(rel, src))
            .collect();
        let mut out = Vec::new();
        check_workspace(&files, &mut out);
        out
    }

    #[test]
    fn missing_forbid_is_flagged_present_is_not() {
        let found = run(&[("crates/demo/src/lib.rs", "//! Docs.\npub fn f() {}\n")]);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("forbid(unsafe_code)"));

        let clean = run(&[(
            "crates/demo/src/lib.rs",
            "//! Docs.\n#![forbid(unsafe_code)]\npub fn f() {}\n",
        )]);
        assert!(clean.is_empty());
    }

    #[test]
    fn unsafe_needs_safety_comment() {
        let found = run(&[(
            "crates/demo/src/lib.rs",
            "pub fn f() {\n    unsafe { core() }\n}\n",
        )]);
        // One for the undocumented unsafe; no missing-forbid finding because
        // the crate cannot forbid what it uses.
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("SAFETY:"));

        let clean = run(&[(
            "crates/demo/src/lib.rs",
            "pub fn f() {\n    // SAFETY: bounds checked above.\n    unsafe { core() }\n}\n",
        )]);
        assert!(clean.is_empty());
    }
}
