//! Rule `seed-streams`: every `SeedSequence` label is a string literal (or a
//! documented `&str` const), unique to one purpose, and registered.
//!
//! Labelled streams (`rng_for_labeled` / `seed_for_labeled`) are the
//! workspace's entire randomness budget: two call sites sharing a label by
//! accident silently correlate draws that every experiment assumes are
//! independent, and a label built at runtime cannot be audited at all. This
//! module therefore does double duty:
//!
//! * **lint** — flags labels that are not literals/known consts, duplicate
//!   labels defined by *different* consts, the same literal label used from
//!   more than one crate, and inline literals that shadow a const;
//! * **registry** — extracts every label with its definition, purpose and
//!   use sites into the data behind the generated `SEED_STREAMS.md`
//!   ([`crate::registry`]), so each figure's seed streams are auditable.
//!
//! A label's *purpose* comes from the defining const's first doc line, or
//! from a `// stream: <purpose>` comment on (or directly above) the call
//! site. The effects module is exempt — it forwards `label` parameters
//! generically.

use std::collections::BTreeMap;

use super::{Finding, EFFECTS_MODULE};
use crate::source::SourceFile;

/// Rule name as used in diagnostics and `lint-allow`.
pub const NAME: &str = "seed-streams";

/// A `const NAME: &str = "label";` definition somewhere in the workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstDef {
    /// The const identifier.
    pub name: String,
    /// The label string it defines.
    pub label: String,
    /// Defining file (workspace-relative).
    pub file: String,
    /// 1-based line of the definition.
    pub line: usize,
    /// First doc-comment line above the const, if any.
    pub doc: Option<String>,
}

/// One `*_for_labeled(run, <label>)` call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseSite {
    /// File of the call (workspace-relative).
    pub file: String,
    /// 1-based line of the call.
    pub line: usize,
    /// Resolved label string.
    pub label: String,
    /// Const the label came through, if the argument was an identifier.
    pub via_const: Option<String>,
    /// Purpose from a `// stream:` comment on or directly above the line.
    pub purpose: Option<String>,
}

/// Everything the rule learned about the workspace's labelled streams.
#[derive(Debug, Default)]
pub struct StreamCatalog {
    /// Label-string consts, keyed by identifier.
    pub consts: BTreeMap<String, ConstDef>,
    /// All resolved call sites, in file/line order.
    pub uses: Vec<UseSite>,
}

impl StreamCatalog {
    /// Groups use sites by label, in label order.
    pub fn by_label(&self) -> BTreeMap<&str, Vec<&UseSite>> {
        let mut map: BTreeMap<&str, Vec<&UseSite>> = BTreeMap::new();
        for site in &self.uses {
            map.entry(site.label.as_str()).or_default().push(site);
        }
        map
    }
}

/// Scans the whole workspace: collects the catalog and appends findings.
pub fn check_workspace(files: &[SourceFile], out: &mut Vec<Finding>) -> StreamCatalog {
    let mut catalog = StreamCatalog::default();
    for file in files {
        collect_consts(file, &mut catalog);
    }
    for file in files {
        if file.rel == EFFECTS_MODULE {
            continue;
        }
        collect_uses(file, &catalog.consts.clone(), &mut catalog, out);
    }
    check_duplicates(&catalog, out);
    catalog
}

fn collect_consts(file: &SourceFile, catalog: &mut StreamCatalog) {
    for (idx, line) in file.code_with_strings.iter().enumerate() {
        if file.in_test(idx) {
            continue;
        }
        let code = line.trim();
        // Shape: [pub] const NAME: &str = "label";
        let Some(pos) = code.find("const ") else {
            continue;
        };
        let rest = &code[pos + "const ".len()..];
        let Some(colon) = rest.find(':') else {
            continue;
        };
        let name = rest[..colon].trim().to_string();
        if name.is_empty() || !name.chars().all(|c| c.is_ascii_uppercase() || c == '_') {
            continue;
        }
        let after = &rest[colon + 1..];
        if !after.trim_start().starts_with("&str") {
            continue;
        }
        let Some(eq) = after.find('=') else {
            continue;
        };
        let Some(label) = string_literal(&after[eq + 1..]) else {
            continue;
        };
        // Doc comment: collect the contiguous `///` block above the const
        // and keep its first sentence.
        let mut doc_lines: Vec<String> = Vec::new();
        for j in (0..idx).rev() {
            let comment = file.comments[j].trim();
            if let Some(text) = comment.strip_prefix("///") {
                doc_lines.push(text.trim().to_string());
                continue;
            }
            if !comment.is_empty() || !file.code[j].trim().is_empty() {
                break;
            }
        }
        doc_lines.reverse();
        let doc = if doc_lines.is_empty() {
            None
        } else {
            let joined = doc_lines.join(" ");
            Some(match joined.find(". ") {
                Some(p) => joined[..=p].to_string(),
                None => joined,
            })
        };
        catalog.consts.insert(
            name.clone(),
            ConstDef {
                name,
                label,
                file: file.rel.clone(),
                line: idx + 1,
                doc,
            },
        );
    }
}

fn collect_uses(
    file: &SourceFile,
    consts: &BTreeMap<String, ConstDef>,
    catalog: &mut StreamCatalog,
    out: &mut Vec<Finding>,
) {
    for idx in 0..file.code_with_strings.len() {
        if file.in_test(idx) {
            continue;
        }
        for marker in ["rng_for_labeled(", "seed_for_labeled("] {
            // Locate the call in the string-masked view, so the marker
            // appearing inside a string literal (e.g. this lint's own
            // sources) is never mistaken for a call site.
            let Some(pos) = file.code[idx].find(marker) else {
                continue;
            };
            // Skip trait/impl definitions and generic forwarders:
            // `fn seed_for_labeled(&self, run: u64, label: &str)`.
            let before = &file.code[idx][..pos];
            if before.trim_end().ends_with("fn") {
                continue;
            }
            // The label is the second argument; it may sit on a later line.
            let joined: String = file
                .code_with_strings
                .iter()
                .skip(idx)
                .take(3)
                .map(|l| l.as_str())
                .collect::<Vec<_>>()
                .join(" ");
            let call_start = joined.find(marker).map(|p| p + marker.len());
            let Some(arg) = call_start.and_then(|p| second_argument(&joined[p..])) else {
                out.push(Finding::new(
                    &file.rel,
                    idx + 1,
                    NAME,
                    "could not parse the label argument of a labelled-stream call".to_string(),
                ));
                continue;
            };
            let arg = arg.trim();
            let purpose = stream_comment(file, idx);
            if let Some(label) = string_literal(arg) {
                catalog.uses.push(UseSite {
                    file: file.rel.clone(),
                    line: idx + 1,
                    label,
                    via_const: None,
                    purpose,
                });
            } else {
                // Identifier (possibly a path): resolve its last segment
                // against the known consts.
                let ident = arg.rsplit("::").next().unwrap_or(arg).trim();
                match consts.get(ident) {
                    Some(def) => catalog.uses.push(UseSite {
                        file: file.rel.clone(),
                        line: idx + 1,
                        label: def.label.clone(),
                        via_const: Some(def.name.clone()),
                        purpose,
                    }),
                    None => out.push(Finding::new(
                        &file.rel,
                        idx + 1,
                        NAME,
                        format!(
                            "seed stream label `{ident}` is not a string literal or a known \
                             `const NAME: &str = \"…\";` — labels must be auditable at rest"
                        ),
                    )),
                }
            }
        }
    }
}

fn check_duplicates(catalog: &StreamCatalog, out: &mut Vec<Finding>) {
    // (a) Two different consts defining the same label.
    let mut by_label: BTreeMap<&str, Vec<&ConstDef>> = BTreeMap::new();
    for def in catalog.consts.values() {
        by_label.entry(def.label.as_str()).or_default().push(def);
    }
    for (label, defs) in &by_label {
        if defs.len() > 1 {
            let names: Vec<&str> = defs.iter().map(|d| d.name.as_str()).collect();
            for def in defs {
                out.push(Finding::new(
                    &def.file,
                    def.line,
                    NAME,
                    format!(
                        "label \"{label}\" is defined by multiple consts ({}) — two purposes \
                         sharing one label correlate their random streams",
                        names.join(", ")
                    ),
                ));
            }
        }
    }
    // (b) The same inline literal used from more than one crate, and
    // (c) an inline literal that shadows a const's label.
    for (label, sites) in catalog.by_label() {
        let inline: Vec<&&UseSite> = sites.iter().filter(|s| s.via_const.is_none()).collect();
        if inline.is_empty() {
            continue;
        }
        let mut crates: Vec<&str> = inline
            .iter()
            .filter_map(|s| {
                s.file
                    .strip_prefix("crates/")
                    .and_then(|r| r.split('/').next())
            })
            .collect();
        crates.sort_unstable();
        crates.dedup();
        if crates.len() > 1 {
            for site in &inline {
                out.push(Finding::new(
                    &site.file,
                    site.line,
                    NAME,
                    format!(
                        "inline label \"{label}\" is used from multiple crates ({}) — hoist it \
                         into one documented const so the purposes cannot drift apart",
                        crates.join(", ")
                    ),
                ));
            }
        }
        if let Some(def) = catalog.consts.values().find(|d| d.label == label) {
            for site in &inline {
                out.push(Finding::new(
                    &site.file,
                    site.line,
                    NAME,
                    format!(
                        "inline label \"{label}\" bypasses const `{}` ({}:{}) — use the const",
                        def.name, def.file, def.line
                    ),
                ));
            }
        }
    }
}

/// Extracts a `"…"` literal from the front of `s` (after trimming).
fn string_literal(s: &str) -> Option<String> {
    let s = s.trim();
    let start = s.find('"')?;
    // Only accept when the literal is the first token (`= "x"` or `"x"`).
    if !s[..start].trim().is_empty() && s[..start].trim() != "=" {
        return None;
    }
    let rest = &s[start + 1..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// The second comma-separated argument of a call, paren-aware.
fn second_argument(args: &str) -> Option<&str> {
    let mut depth = 0i32;
    let mut first_comma = None;
    for (i, c) in args.char_indices() {
        match c {
            '(' | '[' | '{' => depth += 1,
            ')' | ']' | '}' => {
                if depth == 0 {
                    // Call closed before a second argument appeared.
                    return first_comma.map(|fc: usize| &args[fc + 1..i]);
                }
                depth -= 1;
            }
            ',' if depth == 0 => {
                if first_comma.is_some() {
                    // Third argument exists; labelled calls have two.
                    return None;
                }
                first_comma = Some(i);
            }
            _ => {}
        }
    }
    None
}

/// A `// stream: <purpose>` comment on the line or the line above.
fn stream_comment(file: &SourceFile, idx: usize) -> Option<String> {
    for j in [Some(idx), idx.checked_sub(1)].into_iter().flatten() {
        let comment = file.comments[j].trim().trim_start_matches('/').trim();
        if let Some(purpose) = comment.strip_prefix("stream:") {
            return Some(purpose.trim().to_string());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(specs: &[(&str, &str)]) -> (StreamCatalog, Vec<Finding>) {
        let files: Vec<SourceFile> = specs
            .iter()
            .map(|(rel, src)| SourceFile::parse(rel, src))
            .collect();
        let mut out = Vec::new();
        let catalog = check_workspace(&files, &mut out);
        (catalog, out)
    }

    #[test]
    fn literal_and_const_labels_are_collected() {
        let (catalog, findings) = run(&[(
            "crates/sim/src/a.rs",
            "/// Shuffle stream.\npub const S: &str = \"shuffle\";\nfn f(q: &Q) {\n  // stream: per-cycle schedule\n  let r = q.rng_for_labeled(0, \"sched\");\n  let s = q.seed_for_labeled(1, S);\n}\n",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(catalog.uses.len(), 2);
        assert_eq!(catalog.uses[0].label, "sched");
        assert_eq!(
            catalog.uses[0].purpose.as_deref(),
            Some("per-cycle schedule")
        );
        assert_eq!(catalog.uses[1].via_const.as_deref(), Some("S"));
        assert_eq!(catalog.consts["S"].doc.as_deref(), Some("Shuffle stream."));
    }

    #[test]
    fn non_literal_labels_are_flagged() {
        let (_, findings) = run(&[(
            "crates/sim/src/a.rs",
            "fn f(q: &Q, label: &str) {\n  let r = q.rng_for_labeled(0, label);\n}\n",
        )]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("label"));
    }

    #[test]
    fn duplicate_const_labels_are_flagged() {
        let (_, findings) = run(&[
            (
                "crates/sim/src/a.rs",
                "pub const A: &str = \"dup\";\nfn f(q:&Q){ q.rng_for_labeled(0, A); }\n",
            ),
            (
                "crates/net/src/b.rs",
                "pub const B: &str = \"dup\";\nfn g(q:&Q){ q.rng_for_labeled(0, B); }\n",
            ),
        ]);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings[0].message.contains("multiple consts"));
    }

    #[test]
    fn cross_crate_inline_reuse_is_flagged() {
        let (_, findings) = run(&[
            (
                "crates/sim/src/a.rs",
                "fn f(q:&Q){ q.rng_for_labeled(0, \"shared\"); }\n",
            ),
            (
                "crates/net/src/b.rs",
                "fn g(q:&Q){ q.rng_for_labeled(0, \"shared\"); }\n",
            ),
        ]);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings[0].message.contains("multiple crates"));
    }

    #[test]
    fn fn_definitions_are_skipped() {
        let (catalog, findings) = run(&[(
            "crates/core/src/x.rs",
            "pub trait E {\n    fn seed_for_labeled(&self, run: u64, label: &str) -> u64;\n}\n",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
        assert!(catalog.uses.is_empty());
    }
}
