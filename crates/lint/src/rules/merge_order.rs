//! Rule `merge-order`: concurrent results must merge through a seq-sorted
//! path, never in arrival order.
//!
//! The sharded engine's determinism argument has exactly one
//! concurrency-sensitive step: worker threads deliver cross-shard batches
//! through mailboxes, and the receiving side restores a total order (by
//! global sequence number) before touching node or telemetry state — see
//! `crates/sim/src/sharded.rs`. Any new code that (a) drains a channel and
//! consumes the batches un-sorted, or (b) folds floating-point statistics
//! together *inside* a spawned worker (where completion order is the
//! scheduler's choice), silently breaks the worker-count invariance that
//! `tests/determinism.rs` and `tests/interleavings.rs` pin.
//!
//! Two checks, applied to the simulator crate (`crates/sim`) outside tests:
//!
//! 1. **drain-then-sort** — a `try_recv()` / `recv()` drain must be followed
//!    (within [`SORT_WINDOW`] lines) by a `.sort…` call on the drained
//!    buffer before anything iterates it;
//! 2. **no par-side merges** — `.merge(` must not appear lexically inside a
//!    `spawn(`-ed closure; merging belongs to the coordinator, in shard
//!    order.
//!
//! The live runtime (`crates/net`) is exempt: its transport loops are
//! genuinely asynchronous and its determinism story is the lockstep
//! `VirtualCluster`, which routes everything through the same exchange core.

use super::Finding;
use crate::source::SourceFile;

/// Rule name as used in diagnostics and `lint-allow`.
pub const NAME: &str = "merge-order";

/// How many lines after a mailbox drain the restoring sort must appear in.
pub const SORT_WINDOW: usize = 8;

/// Runs the rule over one file, appending raw (pre-suppression) findings.
pub fn check_file(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.crate_name != "sim" {
        return;
    }
    check_drain_then_sort(file, out);
    check_no_par_side_merge(file, out);
}

fn check_drain_then_sort(file: &SourceFile, out: &mut Vec<Finding>) {
    for (idx, line) in file.code.iter().enumerate() {
        if file.in_test(idx) {
            continue;
        }
        if !(line.contains(".try_recv()") || line.contains(".recv()")) {
            continue;
        }
        let sorted = file.code.iter().skip(idx + 1).take(SORT_WINDOW).any(|l| {
            l.contains(".sort_unstable_by_key(")
                || l.contains(".sort_by_key(")
                || l.contains(".sort(")
        });
        if !sorted {
            out.push(Finding::new(
                &file.rel,
                idx + 1,
                NAME,
                format!(
                    "mailbox drain is not followed by a deterministic sort within {SORT_WINDOW} lines; \
                     merge order must be restored by global sequence number, not arrival order"
                ),
            ));
        }
    }
}

fn check_no_par_side_merge(file: &SourceFile, out: &mut Vec<Finding>) {
    // Mark line spans of spawned closures by balancing braces from each
    // `spawn(` to its close.
    let mut in_spawn = vec![false; file.code.len()];
    for (idx, line) in file.code.iter().enumerate() {
        let Some(pos) = line.find("spawn(") else {
            continue;
        };
        let mut depth = 0i64;
        let mut seen_open = false;
        'outer: for (j, l) in file.code.iter().enumerate().skip(idx) {
            let s = if j == idx { &l[pos..] } else { l.as_str() };
            for ch in s.chars() {
                match ch {
                    '(' | '{' => {
                        depth += 1;
                        seen_open = true;
                    }
                    ')' | '}' => {
                        depth -= 1;
                        if seen_open && depth <= 0 {
                            in_spawn[j] = true;
                            break 'outer;
                        }
                    }
                    _ => {}
                }
            }
            in_spawn[j] = true;
        }
    }
    for (idx, line) in file.code.iter().enumerate() {
        if file.in_test(idx) || !in_spawn[idx] {
            continue;
        }
        if line.contains(".merge(") {
            out.push(Finding::new(
                &file.rel,
                idx + 1,
                NAME,
                "statistics merged inside a spawned worker: completion order is scheduler-dependent; \
                 return per-shard results and merge coordinator-side in shard order"
                    .to_string(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let f = SourceFile::parse("crates/sim/src/x.rs", src);
        let mut out = Vec::new();
        check_file(&f, &mut out);
        out
    }

    #[test]
    fn unsorted_drain_is_flagged_sorted_drain_is_not() {
        let bad = "while let Ok(b) = rx.try_recv() {\n    buf.extend(b);\n}\nfor x in &buf { use_it(x); }\n";
        let found = run(bad);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 1);

        let good = "while let Ok(b) = rx.try_recv() {\n    buf.extend(b);\n}\nbuf.sort_unstable_by_key(|c| c.seq);\n";
        assert!(run(good).is_empty());
    }

    #[test]
    fn merge_inside_spawn_is_flagged() {
        let bad = "scope.spawn(move || {\n    stats.merge(&other);\n});\n";
        let found = run(bad);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 2);

        let good = "scope.spawn(move || {\n    work();\n});\nstats.merge(&other);\n";
        assert!(run(good).is_empty());
    }

    #[test]
    fn other_crates_are_out_of_scope() {
        let f = SourceFile::parse(
            "crates/net/src/x.rs",
            "while let Ok(b) = rx.try_recv() { handle(b); }\n",
        );
        let mut out = Vec::new();
        check_file(&f, &mut out);
        assert!(out.is_empty());
    }
}
