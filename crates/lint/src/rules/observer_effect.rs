//! Rule `observer-effect`: telemetry is write-only inside protocol crates.
//!
//! The flight recorder's whole guarantee is that switching tracing on or off
//! never changes a single protocol bit (`tests/determinism.rs` pins this).
//! That holds only if protocol code treats the `TelemetrySink` facade as a
//! one-way mirror: it may *record* (`exchange_begun`, `node_departed`,
//! `observe_variance`, …) but must never *read back* what was recorded —
//! a branch on a counter, a verdict or a drained event would let the
//! observer steer the experiment, and the disabled path would diverge.
//!
//! Two checks, applied to every protocol crate outside tests:
//!
//! 1. **no read-backs** — calls to the sink/registry read surface
//!    ([`READ_CALLS`]) are flagged. Post-hoc export accessors (drain-for-
//!    observers, verdict getters) are the legitimate exception and carry a
//!    `lint-allow(observer-effect)` with a reason.
//! 2. **facade only** — telemetry state is owned by `TelemetrySink`;
//!    constructing a raw `MetricsRegistry`/`ConvergenceWatchdog` in a
//!    protocol crate bypasses the single enable/disable switch that the
//!    bit-identity pins rely on.
//!
//! `TelemetrySink` itself (crate `telemetry`) is not a protocol crate, so
//! the sink's internal reads are out of scope by construction.

use super::{Finding, PROTOCOL_CRATES};
use crate::source::SourceFile;

/// Rule name as used in diagnostics and `lint-allow`.
pub const NAME: &str = "observer-effect";

/// Method-call patterns of the telemetry read surface. The leading dot keeps
/// definitions (`pub fn watchdog_verdict(…)`) out of scope — only call sites
/// fire.
pub const READ_CALLS: &[&str] = &[
    ".drain_events(",
    ".drain_events_with(",
    ".dropped_events(",
    ".watchdog_verdict(",
    ".diagnoses(",
    ".metrics(",
    ".metrics_mut(",
];

/// Raw telemetry state types that must stay behind the sink facade.
pub const FACADE_BYPASSES: &[&str] = &["MetricsRegistry::", "ConvergenceWatchdog::"];

/// Runs the rule over one file, appending raw (pre-suppression) findings.
pub fn check_file(file: &SourceFile, out: &mut Vec<Finding>) {
    if !PROTOCOL_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    for (idx, line) in file.code.iter().enumerate() {
        if file.in_test(idx) {
            continue;
        }
        if let Some(call) = READ_CALLS.iter().find(|c| line.contains(*c)) {
            let method = call.trim_start_matches('.').trim_end_matches('(');
            out.push(Finding::new(
                &file.rel,
                idx + 1,
                NAME,
                format!(
                    "telemetry read `{method}` in a protocol crate: recording must be \
                     write-only so tracing cannot steer the protocol; if this is a \
                     post-hoc export accessor, justify it with a lint-allow"
                ),
            ));
            continue;
        }
        if let Some(path) = FACADE_BYPASSES.iter().find(|p| line.contains(*p)) {
            let ty = path.trim_end_matches(':');
            out.push(Finding::new(
                &file.rel,
                idx + 1,
                NAME,
                format!(
                    "`{ty}` used directly in a protocol crate: telemetry state belongs \
                     behind `TelemetrySink`, whose single disabled() switch keeps the \
                     untraced path bit-identical"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, src: &str) -> Vec<Finding> {
        let f = SourceFile::parse(rel, src);
        let mut out = Vec::new();
        check_file(&f, &mut out);
        out
    }

    #[test]
    fn read_back_is_flagged_recording_is_not() {
        let bad = "if sink.watchdog_verdict().is_some() {\n    restart();\n}\n";
        let found = run("crates/sim/src/x.rs", bad);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 1);
        assert!(found[0].message.contains("watchdog_verdict"));

        let good = "sink.exchange_begun(seq, a, b);\nsink.observe_variance(cycle, v);\n";
        assert!(run("crates/sim/src/x.rs", good).is_empty());
    }

    #[test]
    fn method_definitions_do_not_fire() {
        let src = "pub fn watchdog_verdict(&self) -> Option<WatchdogVerdict> {\n";
        assert!(run("crates/net/src/x.rs", src).is_empty());
    }

    #[test]
    fn facade_bypass_is_flagged() {
        let bad = "let registry = MetricsRegistry::new();\n";
        let found = run("crates/core/src/x.rs", bad);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("MetricsRegistry"));
    }

    #[test]
    fn non_protocol_crates_and_tests_are_out_of_scope() {
        let src = "let v = sink.drain_events();\n";
        assert!(run("crates/telemetry/src/x.rs", src).is_empty());
        assert!(run("crates/analysis/src/x.rs", src).is_empty());

        let in_test =
            "#[cfg(test)]\nmod tests {\n    fn t(sink: &mut S) { sink.drain_events(); }\n}\n";
        assert!(run("crates/sim/src/x.rs", in_test).is_empty());
    }
}
