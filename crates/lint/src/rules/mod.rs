//! The lint catalog: one module per rule, plus the shared [`Finding`] type.
//!
//! | rule | guards |
//! |---|---|
//! | `nondeterminism` | no unordered containers, wall clocks or ambient RNG in protocol paths |
//! | `seed-streams` | every `SeedSequence` label is a literal, unique, and registered |
//! | `unwrap` | no `unwrap`/`expect`/`panic!` in non-test library code |
//! | `merge-order` | concurrent results merge through a seq-sorted path only |
//! | `unsafe-safety` | `#![forbid(unsafe_code)]` everywhere, `SAFETY:` where not |
//! | `observer-effect` | telemetry is write-only in protocol crates; reads stay post-hoc |
//!
//! Each rule walks the pre-lexed [`SourceFile`](crate::source::SourceFile)
//! views; none of them re-read the filesystem. Suppression and stale-allow
//! detection are the driver's job ([`crate::Engine::check`]), so rules always
//! report every raw violation.

pub mod merge_order;
pub mod nondeterminism;
pub mod observer_effect;
pub mod seed_streams;
pub mod unsafe_safety;
pub mod unwrap_free;

/// Crate directory names whose `src/` trees are protocol paths: code that
/// runs inside (or schedules) gossip cycles and must stay bit-deterministic.
pub const PROTOCOL_CRATES: &[&str] = &["core", "sim", "faults", "membership", "net"];

/// The module exempt from `nondeterminism` and `seed-streams`: it *defines*
/// the clock/entropy injection boundary, so it is the one place allowed to
/// touch `Instant::now` and to handle labels generically.
pub const EFFECTS_MODULE: &str = "crates/core/src/effects.rs";

/// One diagnostic: a rule violation (or driver-level problem such as a stale
/// allow) anchored to a file and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative `/`-separated path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule name (`nondeterminism`, `seed-streams`, `unwrap`, `merge-order`,
    /// `unsafe-safety`, `observer-effect`, or the driver's `stale-allow` /
    /// `malformed-allow`).
    pub rule: String,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Finding {
    /// Builds a finding from parts; `line` is 1-based.
    pub fn new(file: &str, line: usize, rule: &str, message: String) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            rule: rule.to_string(),
            message,
        }
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}
