//! Minimal JSON emission for the machine-readable report.
//!
//! The build environment vendors no `serde_json`, so the report is emitted
//! by hand: only objects, arrays, strings, integers and booleans are needed,
//! and [`escape`] covers the full JSON string grammar.

use crate::Report;

/// Escapes `s` as the contents of a JSON string (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the full report as a JSON document (findings, suppressions,
/// summary), deterministically ordered.
pub fn render(report: &Report) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [\n");
    let findings: Vec<String> = report
        .findings
        .iter()
        .map(|f| {
            format!(
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
                escape(&f.rule),
                escape(&f.file),
                f.line,
                escape(&f.message)
            )
        })
        .collect();
    out.push_str(&findings.join(",\n"));
    out.push_str("\n  ],\n  \"suppressed\": [\n");
    let suppressed: Vec<String> = report
        .suppressed
        .iter()
        .map(|s| {
            format!(
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"reason\": \"{}\"}}",
                escape(&s.finding.rule),
                escape(&s.finding.file),
                s.finding.line,
                escape(&s.reason)
            )
        })
        .collect();
    out.push_str(&suppressed.join(",\n"));
    out.push_str(&format!(
        "\n  ],\n  \"summary\": {{\"files_checked\": {}, \"findings\": {}, \"suppressed\": {}}}\n}}\n",
        report.files_checked,
        report.findings.len(),
        report.suppressed.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_json_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
