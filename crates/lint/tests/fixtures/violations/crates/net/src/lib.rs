//! Fixture: net crate missing `#![forbid(unsafe_code)]`, with a runtime
//! label and a cross-crate inline label.

pub fn run(seeds: &SeedSequence, label: &str) {
    let _rng = seeds.rng_for_labeled(0, label);
}

pub fn shared(seeds: &SeedSequence) {
    let _rng = seeds.rng_for_labeled(0, "shared-label");
}
