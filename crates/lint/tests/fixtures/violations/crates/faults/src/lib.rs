//! Fixture: `unsafe` blocks, one undocumented and one documented.

pub fn peek(p: *const u32) -> u32 {
    unsafe { *p }
}

pub fn peek_documented(p: *const u32) -> u32 {
    // SAFETY: caller guarantees `p` is valid and aligned.
    unsafe { *p }
}
