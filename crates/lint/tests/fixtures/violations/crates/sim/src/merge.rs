//! Fixture: merge-order violations plus a cross-crate inline seed label.

pub fn drain(rx: &Receiver<u32>, buf: &mut Vec<u32>) {
    while let Ok(b) = rx.try_recv() {
        buf.push(b);
    }
    for x in buf.iter() {
        consume(*x);
    }
}

pub fn par(scope: &Scope, stats: &mut Stats, other: &Stats) {
    scope.spawn(move || {
        stats.merge(other);
    });
}

pub fn shared(seeds: &SeedSequence) {
    let _rng = seeds.rng_for_labeled(0, "shared-label");
}
