//! Fixture: observer-effect violations — telemetry reads steering protocol.

pub fn decide(sink: &TelemetrySink) -> bool {
    sink.watchdog_verdict().is_some()
}

pub fn shortcut(sink: &mut Sim) {
    if sink.telemetry.metrics().render().is_empty() {
        sink.restart_epoch();
    }
}

pub fn bypass() -> MetricsRegistry {
    MetricsRegistry::new()
}
