//! Fixture: protocol-crate lib with known nondeterminism/unwrap violations.
#![forbid(unsafe_code)]

use std::collections::HashMap;

pub fn now_ms() -> u64 {
    let t = Instant::now();
    t.elapsed().as_millis() as u64
}

pub fn lookup(map: &HashMap<u32, u32>, k: u32) -> u32 {
    *map.get(&k).unwrap()
}

// lint-allow(nondeterminism): keyed lookup only; never iterated
pub type Cache = HashMap<u64, u64>;

// lint-allow(unwrap): stale — nothing on the next line violates the rule
pub fn fine() {}

// lint-allow(nondeterminism)
pub type Cache2 = HashMap<u64, u64>;

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn violations_in_tests_are_exempt() {
        let _set: HashSet<u32> = HashSet::new();
        let _v = None::<u32>.unwrap_or(0);
    }
}
