//! Integration tests for the lint engine.
//!
//! Two subjects:
//!
//! 1. the **fixture tree** under `tests/fixtures/violations/` — a miniature
//!    `crates/` layout seeded with one known violation per rule, pinning the
//!    exact `(file, line, rule)` of every diagnostic plus the allow /
//!    stale-allow / malformed-allow driver behaviour;
//! 2. the **real workspace** — which must stay lint-clean with a current
//!    `SEED_STREAMS.md`, so `cargo test` itself enforces what CI's
//!    `lint-suite` job enforces.

use std::path::Path;

use gossip_lint::{find_workspace_root, json, Engine};

fn fixture_engine() -> Engine {
    let root = Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/violations"
    ));
    Engine::load(root).expect("fixture tree loads")
}

/// Every diagnostic the fixture tree must produce, in report order
/// (sorted by file, then line, then rule).
const EXPECTED: &[(&str, usize, &str)] = &[
    ("crates/faults/src/lib.rs", 4, "unsafe-safety"),
    ("crates/net/src/lib.rs", 1, "unsafe-safety"),
    ("crates/net/src/lib.rs", 5, "seed-streams"),
    ("crates/net/src/lib.rs", 9, "seed-streams"),
    ("crates/sim/src/lib.rs", 4, "nondeterminism"),
    ("crates/sim/src/lib.rs", 7, "nondeterminism"),
    ("crates/sim/src/lib.rs", 11, "nondeterminism"),
    ("crates/sim/src/lib.rs", 12, "unwrap"),
    ("crates/sim/src/lib.rs", 18, "stale-allow"),
    ("crates/sim/src/lib.rs", 21, "malformed-allow"),
    ("crates/sim/src/lib.rs", 22, "nondeterminism"),
    ("crates/sim/src/merge.rs", 4, "merge-order"),
    ("crates/sim/src/merge.rs", 14, "merge-order"),
    ("crates/sim/src/merge.rs", 19, "seed-streams"),
    ("crates/sim/src/telem.rs", 4, "observer-effect"),
    ("crates/sim/src/telem.rs", 8, "observer-effect"),
    ("crates/sim/src/telem.rs", 14, "observer-effect"),
];

#[test]
fn fixture_findings_are_exact() {
    let report = fixture_engine().check();
    let got: Vec<(&str, usize, &str)> = report
        .findings
        .iter()
        .map(|f| (f.file.as_str(), f.line, f.rule.as_str()))
        .collect();
    assert_eq!(got, EXPECTED, "full findings: {:#?}", report.findings);
    assert_eq!(report.files_checked, 5);
}

#[test]
fn fixture_messages_name_the_offending_token() {
    let report = fixture_engine().check();
    let message_at = |file: &str, line: usize| -> &str {
        &report
            .findings
            .iter()
            .find(|f| f.file == file && f.line == line)
            .expect("finding present")
            .message
    };
    assert!(message_at("crates/sim/src/lib.rs", 7).contains("Instant::now"));
    assert!(message_at("crates/net/src/lib.rs", 5).contains("`label`"));
    assert!(message_at("crates/net/src/lib.rs", 9).contains("net, sim"));
    assert!(message_at("crates/faults/src/lib.rs", 4).contains("SAFETY:"));
    assert!(message_at("crates/net/src/lib.rs", 1).contains("#![forbid(unsafe_code)]"));
    assert!(message_at("crates/sim/src/telem.rs", 4).contains("watchdog_verdict"));
    assert!(message_at("crates/sim/src/telem.rs", 14).contains("MetricsRegistry"));
}

#[test]
fn fixture_allow_suppresses_and_keeps_the_reason() {
    let report = fixture_engine().check();
    assert_eq!(report.suppressed.len(), 1, "{:#?}", report.suppressed);
    let s = &report.suppressed[0];
    assert_eq!(s.finding.file, "crates/sim/src/lib.rs");
    assert_eq!(s.finding.line, 16);
    assert_eq!(s.finding.rule, "nondeterminism");
    assert_eq!(s.reason, "keyed lookup only; never iterated");
    // The suppressed line must not also appear as an active finding.
    assert!(!report
        .findings
        .iter()
        .any(|f| f.file == "crates/sim/src/lib.rs" && f.line == 16));
}

#[test]
fn fixture_registry_drift_is_reported_when_file_is_absent() {
    let engine = fixture_engine();
    let (_, catalog) = engine.check_with_catalog();
    let drift = engine
        .registry_drift(&catalog)
        .expect("drift check reads cleanly")
        .expect("fixture tree has no SEED_STREAMS.md, so drift must fire");
    assert_eq!(drift.rule, "seed-streams");
    assert_eq!(drift.file, "SEED_STREAMS.md");
    assert!(drift.message.contains("write-registry"));
}

#[test]
fn fixture_json_report_round_trips_counts() {
    let report = fixture_engine().check();
    let doc = json::render(&report);
    assert!(doc.contains("\"version\": 1"));
    assert!(
        doc.contains("\"summary\": {\"files_checked\": 5, \"findings\": 17, \"suppressed\": 1}")
    );
    assert!(doc.contains("\"rule\": \"merge-order\""));
    assert!(doc.contains("\"reason\": \"keyed lookup only; never iterated\""));
}

#[test]
fn real_workspace_is_clean_and_registry_is_current() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("lint crate sits inside the workspace");
    let engine = Engine::load(&root).expect("workspace loads");
    let (report, catalog) = engine.check_with_catalog();
    assert!(
        report.is_clean(),
        "the workspace must stay lint-clean; findings: {:#?}",
        report.findings
    );
    let drift = engine.registry_drift(&catalog).expect("registry readable");
    assert!(
        drift.is_none(),
        "SEED_STREAMS.md is stale — run `cargo run -p gossip-lint -- write-registry`"
    );
    // Every suppression must still carry a reason (the driver enforces this,
    // but assert it here so the contract is visible in one place).
    for s in &report.suppressed {
        assert!(!s.reason.is_empty(), "{:?}", s.finding);
    }
}
