//! Node descriptors: the unit of information exchanged by the membership
//! protocol.

use overlay_topology::NodeId;
use serde::{Deserialize, Serialize};

/// A descriptor of a node as seen by the membership protocol: the node's
/// identifier plus the *age* of the information (number of membership cycles
/// since the descriptor was created by the node itself).
///
/// Fresh descriptors (small age) are evidence that the node was recently
/// alive; newscast's merge rule keeps the freshest descriptors, which is how
/// crashed nodes eventually disappear from all views without any explicit
/// failure detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeDescriptor {
    /// The described node.
    pub node: NodeId,
    /// Age of the descriptor in membership cycles.
    pub age: u32,
}

impl NodeDescriptor {
    /// Creates a brand-new (age 0) descriptor for `node`.
    pub fn fresh(node: NodeId) -> Self {
        NodeDescriptor { node, age: 0 }
    }

    /// Creates a descriptor with an explicit age.
    pub fn with_age(node: NodeId, age: u32) -> Self {
        NodeDescriptor { node, age }
    }

    /// Returns a copy of the descriptor aged by one cycle (saturating).
    pub fn aged(self) -> Self {
        NodeDescriptor {
            node: self.node,
            age: self.age.saturating_add(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_descriptors_have_age_zero() {
        let d = NodeDescriptor::fresh(NodeId::new(3));
        assert_eq!(d.node, NodeId::new(3));
        assert_eq!(d.age, 0);
    }

    #[test]
    fn aging_increments_and_saturates() {
        let d = NodeDescriptor::with_age(NodeId::new(1), 4);
        assert_eq!(d.aged().age, 5);
        let old = NodeDescriptor::with_age(NodeId::new(1), u32::MAX);
        assert_eq!(old.aged().age, u32::MAX);
    }

    #[test]
    fn descriptors_compare_by_value() {
        assert_eq!(
            NodeDescriptor::fresh(NodeId::new(2)),
            NodeDescriptor::with_age(NodeId::new(2), 0)
        );
        assert_ne!(
            NodeDescriptor::fresh(NodeId::new(2)),
            NodeDescriptor::with_age(NodeId::new(2), 1)
        );
    }
}
