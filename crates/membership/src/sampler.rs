//! [`PeerSampler`] implementations backed by this crate's membership
//! machinery: a live NEWSCAST protocol and static overlay graphs.
//!
//! The simulation engines in `gossip-sim` drive any [`PeerSampler`] through
//! the same three hooks — `begin_cycle` (overlay maintenance, in lockstep
//! with aggregation cycles), `sample` (one pick per initiating node) and the
//! churn notifications — so swapping the paper's idealised uniform sampling
//! for a realistic membership service is a one-line configuration change
//! ([`aggregate_core::sampler::SamplerConfig`]).

use crate::{NewscastNode, NodeDescriptor, PartialView};
use aggregate_core::sampler::{PeerSampler, SamplerConfig, SamplerDirectory};
use overlay_topology::{
    BuiltTopology, NodeId, Topology, TopologyBuilder, TopologyError, TopologyKind,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, RngCore, SeedableRng};
use std::collections::BTreeMap;

/// A live NEWSCAST membership service acting as the peer sampler of a
/// simulation: every live node keeps a partial view ("cache") of
/// `cache_size` descriptors; once per aggregation cycle each node exchanges
/// and merges views with its oldest known peer, then all descriptors age by
/// one. Exchange partners for the *aggregation* protocol are drawn uniformly
/// from the initiator's current view.
///
/// Failure handling is exactly the paper's: there is no failure detector.
/// Descriptors of departed nodes age until they fall off the cache tail, and
/// a failed exchange attempt drops the stale descriptor immediately
/// (tail-drop healing, reported by the engine through
/// [`PeerSampler::peer_failed`]).
///
/// Determinism: membership randomness (exchange order, bootstrap contacts)
/// comes from an internal RNG seeded at construction; sampling randomness
/// comes from the engine's seeded pick stream. Node state lives in a
/// `BTreeMap`, so iteration order — and therefore the whole trajectory — is
/// a pure function of the seeds.
///
/// # Example
///
/// ```
/// use aggregate_core::sampler::{PeerSampler, SliceDirectory};
/// use overlay_topology::NodeId;
/// use peer_sampling::NewscastSampler;
/// use rand::SeedableRng;
///
/// let live: Vec<NodeId> = (0..100).map(NodeId::new).collect();
/// let directory = SliceDirectory::new(&live);
/// let mut sampler = NewscastSampler::new(8, &live, 42);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
///
/// // A few cycles of view exchange fill and randomise the caches…
/// for _ in 0..10 {
///     sampler.begin_cycle(&directory);
/// }
/// // …after which every node can produce a partner from its own view.
/// let peer = sampler.sample(&directory, 3, &mut rng).unwrap();
/// assert_ne!(peer, NodeId::new(3));
/// assert_eq!(sampler.view_of(NodeId::new(3)).unwrap().len(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct NewscastSampler {
    cache_size: usize,
    nodes: BTreeMap<NodeId, NewscastNode>,
    rng: StdRng,
    /// Scratch buffer for the per-cycle exchange order.
    order: Vec<NodeId>,
}

impl NewscastSampler {
    /// Creates the sampler over an initial population, bootstrapping each
    /// node's view with `cache_size` uniformly random contacts — the
    /// steady-state regime the paper's experiments start from (a NEWSCAST
    /// overlay converges to a `c`-out random graph within a few cycles from
    /// any connected start, so this skips the transient without changing
    /// the dynamics).
    ///
    /// `membership_seed` seeds the internal RNG driving bootstrap contacts
    /// and the per-cycle exchange order; the engines derive it from the
    /// master seed via a labelled stream so it never interferes with the
    /// aggregation draws.
    ///
    /// # Panics
    ///
    /// Panics if `cache_size` is zero.
    pub fn new(cache_size: usize, initial: &[NodeId], membership_seed: u64) -> Self {
        assert!(cache_size > 0, "newscast cache size must be positive");
        let n = initial.len();
        let mut rng = StdRng::seed_from_u64(membership_seed);
        let contacts_per_node = cache_size.min(n.saturating_sub(1));
        let nodes = initial
            .iter()
            .enumerate()
            .map(|(i, &id)| {
                // Distinct random contacts, drawn positionally so the
                // bootstrap is invariant under the engines' id layouts.
                let mut contacts: Vec<NodeId> = Vec::with_capacity(contacts_per_node);
                while contacts.len() < contacts_per_node {
                    let pos = rng.gen_range(0..n);
                    let candidate = initial[pos];
                    if pos != i && !contacts.contains(&candidate) {
                        contacts.push(candidate);
                    }
                }
                (id, NewscastNode::new(id, cache_size, &contacts))
            })
            .collect();
        NewscastSampler {
            cache_size,
            nodes,
            rng,
            order: Vec::new(),
        }
    }

    /// The configured per-node view capacity `c`.
    pub fn cache_size(&self) -> usize {
        self.cache_size
    }

    /// Number of nodes currently holding membership state.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` when no node holds membership state.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Read access to a node's current partial view, if the node is known.
    pub fn view_of(&self, id: NodeId) -> Option<&PartialView> {
        self.nodes.get(&id).map(NewscastNode::view)
    }

    /// In-degree of every member: how many *other* members currently list it
    /// in their view. A healthy peer-sampling service keeps this
    /// distribution narrow; the view-dynamics tests bound it.
    pub fn in_degrees(&self) -> BTreeMap<NodeId, usize> {
        let mut degrees: BTreeMap<NodeId, usize> = self.nodes.keys().map(|&id| (id, 0)).collect();
        for node in self.nodes.values() {
            for descriptor in node.view().iter() {
                if let Some(count) = degrees.get_mut(&descriptor.node) {
                    *count += 1;
                }
            }
        }
        degrees
    }

    /// Number of *stale* descriptors across all views: entries naming a node
    /// that no longer holds membership state. Self-healing drives this to
    /// zero after a failure burst; the dynamics tests assert it.
    pub fn stale_descriptors(&self) -> usize {
        self.nodes
            .values()
            .flat_map(|node| node.view().iter())
            .filter(|descriptor| !self.nodes.contains_key(&descriptor.node))
            .count()
    }
}

impl PeerSampler for NewscastSampler {
    fn config(&self) -> SamplerConfig {
        SamplerConfig::Newscast {
            cache_size: self.cache_size,
        }
    }

    /// One NEWSCAST cycle: every member (in a shuffled order drawn from the
    /// internal RNG) exchanges views with its oldest known peer — dropping
    /// the descriptor instead when that peer has departed — then every view
    /// ages by one.
    ///
    /// The exchange order is drawn over *directory positions*, not raw
    /// identifiers: the sharded engine's directory order is invariant under
    /// the shard count (identifiers are not — they embed shard bits), and
    /// iterating positionally is what keeps NEWSCAST-sampled node
    /// trajectories bit-identical across 1/2/4/8 shards.
    fn begin_cycle(&mut self, directory: &dyn SamplerDirectory) {
        let mut order = std::mem::take(&mut self.order);
        order.clear();
        order.extend((0..directory.len()).map(|pos| directory.id_at(pos)));
        order.shuffle(&mut self.rng);
        for initiator in &order {
            let Some(partner) = self
                .nodes
                .get(initiator)
                .and_then(NewscastNode::exchange_partner)
            else {
                continue;
            };
            if !self.nodes.contains_key(&partner) {
                // The oldest entry points at a departed node: heal the view
                // (no failure detector — the failed contact attempt is the
                // detection) and skip this cycle's membership exchange.
                if let Some(node) = self.nodes.get_mut(initiator) {
                    node.evict(partner);
                }
                continue;
            }
            let offer = self.nodes[initiator].prepare_exchange();
            let response = self
                .nodes
                .get_mut(&partner)
                // lint-allow(unwrap): partner membership checked at the top of this loop iteration
                .expect("checked above")
                .accept_exchange(&offer);
            self.nodes
                .get_mut(initiator)
                // lint-allow(unwrap): initiator is drawn from the current member list
                .expect("iterating current members")
                .complete_exchange(&response);
        }
        for node in self.nodes.values_mut() {
            node.end_cycle();
        }
        self.order = order;
    }

    fn sample(
        &mut self,
        directory: &dyn SamplerDirectory,
        initiator_pos: usize,
        rng: &mut dyn RngCore,
    ) -> Option<NodeId> {
        let id = directory.id_at(initiator_pos);
        self.nodes.get(&id)?.view().random_peer(rng)
    }

    /// A joining node learns one uniformly random live contact (the paper's
    /// "a joining node knows an arbitrary member"); gossip spreads its
    /// descriptor from there.
    fn on_join(&mut self, id: NodeId, directory: &dyn SamplerDirectory) {
        let n = directory.len();
        let mut bootstrap = Vec::new();
        if n > 1 {
            // The directory already contains the newcomer; reject self-picks.
            // The loop terminates because some other node exists (n > 1).
            loop {
                let contact = directory.id_at(self.rng.gen_range(0..n));
                if contact != id {
                    bootstrap.push(contact);
                    break;
                }
            }
        }
        self.nodes
            .insert(id, NewscastNode::new(id, self.cache_size, &bootstrap));
        // Tell the contact about the newcomer as well (the join handshake's
        // other half), so isolated newcomers cannot linger unreferenced.
        if let Some(&contact) = bootstrap.first() {
            if let Some(node) = self.nodes.get_mut(&contact) {
                node.complete_exchange(&[NodeDescriptor::fresh(id)]);
            }
        }
    }

    fn on_depart(&mut self, id: NodeId) {
        self.nodes.remove(&id);
    }

    fn peer_failed(&mut self, initiator: NodeId, peer: NodeId) {
        if let Some(node) = self.nodes.get_mut(&initiator) {
            node.evict(peer);
        }
    }
}

/// Peer sampling along the edges of a static overlay graph generated once at
/// construction — the setting of the paper's Figure 3(b) overlay sweep
/// (random regular graphs, small worlds, scale-free graphs, …).
///
/// The overlay's vertices are bound to the initial population in directory
/// order. Under churn the binding evolves deterministically: a departure
/// vacates its vertex (neighbours drawing it simply fail that attempt, as a
/// crashed neighbour would), and a later join re-occupies the most recently
/// vacated vertex. Joins beyond the vacancy pool stay overlay-isolated and
/// never initiate (a static overlay has no room for them — use
/// [`NewscastSampler`] for workloads where the overlay must follow churn).
#[derive(Debug, Clone)]
pub struct StaticOverlaySampler {
    kind: TopologyKind,
    topology: BuiltTopology,
    /// Vertex → current occupant.
    occupant: Vec<Option<NodeId>>,
    /// Occupant → vertex.
    vertex_of: BTreeMap<NodeId, usize>,
    /// Vacated vertices, re-assigned LIFO.
    vacant: Vec<usize>,
}

impl StaticOverlaySampler {
    /// Generates the overlay over the initial population (vertex `i` ↔
    /// `initial[i]`), with generator randomness from `topology_seed`.
    ///
    /// # Errors
    ///
    /// Propagates [`TopologyError`] for invalid generator parameters (degree
    /// too large, probability out of range, …).
    pub fn new(
        kind: TopologyKind,
        initial: &[NodeId],
        topology_seed: u64,
    ) -> Result<Self, TopologyError> {
        let mut rng = StdRng::seed_from_u64(topology_seed);
        let topology = TopologyBuilder::new(kind)
            .nodes(initial.len())
            .build(&mut rng)?;
        Ok(StaticOverlaySampler {
            kind,
            topology,
            occupant: initial.iter().map(|&id| Some(id)).collect(),
            vertex_of: initial.iter().enumerate().map(|(v, &id)| (id, v)).collect(),
            vacant: Vec::new(),
        })
    }

    /// The generated overlay (vertex space, not current occupants).
    pub fn topology(&self) -> &BuiltTopology {
        &self.topology
    }

    /// The vertex currently bound to `id`, if any.
    pub fn vertex_of(&self, id: NodeId) -> Option<usize> {
        self.vertex_of.get(&id).copied()
    }
}

impl PeerSampler for StaticOverlaySampler {
    fn config(&self) -> SamplerConfig {
        SamplerConfig::StaticOverlay {
            topology: self.kind,
        }
    }

    fn sample(
        &mut self,
        directory: &dyn SamplerDirectory,
        initiator_pos: usize,
        rng: &mut dyn RngCore,
    ) -> Option<NodeId> {
        let id = directory.id_at(initiator_pos);
        let vertex = *self.vertex_of.get(&id)?;
        let neighbor = self.topology.random_neighbor(NodeId::new(vertex), rng)?;
        // A vacated neighbour vertex is a crashed peer: the contact attempt
        // fails and the initiator skips this cycle, as in the paper's model.
        self.occupant[neighbor.index()]
    }

    fn on_join(&mut self, id: NodeId, _directory: &dyn SamplerDirectory) {
        if let Some(vertex) = self.vacant.pop() {
            self.occupant[vertex] = Some(id);
            self.vertex_of.insert(id, vertex);
        }
    }

    fn on_depart(&mut self, id: NodeId) {
        if let Some(vertex) = self.vertex_of.remove(&id) {
            self.occupant[vertex] = None;
            self.vacant.push(vertex);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggregate_core::sampler::{sample_live_peer, SliceDirectory};

    fn ids(n: usize) -> Vec<NodeId> {
        (0..n).map(NodeId::new).collect()
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(9)
    }

    #[test]
    fn newscast_views_fill_to_cache_size_and_samples_stay_live() {
        let live = ids(200);
        let directory = SliceDirectory::new(&live);
        let mut sampler = NewscastSampler::new(10, &live, 1);
        for _ in 0..15 {
            sampler.begin_cycle(&directory);
        }
        let mut r = rng();
        for (pos, &own) in live.iter().enumerate() {
            assert_eq!(sampler.view_of(own).unwrap().len(), 10);
            let peer = sample_live_peer(&mut sampler, &directory, pos, &mut r).unwrap();
            assert_ne!(peer, own);
        }
        assert_eq!(sampler.cache_size(), 10);
        assert_eq!(sampler.len(), 200);
    }

    #[test]
    fn newscast_same_seed_same_trajectory() {
        let live = ids(60);
        let directory = SliceDirectory::new(&live);
        let run = || {
            let mut sampler = NewscastSampler::new(6, &live, 77);
            let mut r = StdRng::seed_from_u64(5);
            let mut picks = Vec::new();
            for _ in 0..10 {
                sampler.begin_cycle(&directory);
                for pos in 0..60 {
                    picks.push(sampler.sample(&directory, pos, &mut r));
                }
            }
            picks
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn newscast_joins_bootstrap_and_departures_heal() {
        let mut live = ids(50);
        let mut sampler = NewscastSampler::new(5, &live, 3);
        {
            let directory = SliceDirectory::new(&live);
            for _ in 0..10 {
                sampler.begin_cycle(&directory);
            }
        }
        // Depart 10 nodes, join one newcomer.
        for dead in live.drain(0..10) {
            sampler.on_depart(dead);
        }
        let newcomer = NodeId::new(1_000);
        live.push(newcomer);
        let directory = SliceDirectory::new(&live);
        sampler.on_join(newcomer, &directory);
        assert_eq!(sampler.len(), 41);
        let bootstrap = sampler.view_of(newcomer).unwrap();
        assert_eq!(bootstrap.len(), 1, "newcomer knows exactly one contact");
        assert!(
            sampler.stale_descriptors() > 0,
            "views still cache the departed"
        );
        // A few cycles of aging + tail-drop flush every stale descriptor and
        // spread the newcomer.
        for _ in 0..40 {
            sampler.begin_cycle(&directory);
        }
        assert_eq!(sampler.stale_descriptors(), 0);
        assert!(
            sampler.in_degrees()[&newcomer] > 0,
            "the newcomer must be gossiped into other views"
        );
    }

    #[test]
    fn newscast_peer_failed_evicts_the_stale_descriptor() {
        let live = ids(10);
        let directory = SliceDirectory::new(&live);
        let mut sampler = NewscastSampler::new(4, &live, 1);
        sampler.begin_cycle(&directory);
        let initiator = live[0];
        let peer = sampler.view_of(initiator).unwrap().node_ids()[0];
        sampler.peer_failed(initiator, peer);
        assert!(!sampler.view_of(initiator).unwrap().contains(peer));
    }

    #[test]
    fn static_overlay_samples_along_edges_only() {
        let live = ids(30);
        let directory = SliceDirectory::new(&live);
        let mut sampler = StaticOverlaySampler::new(TopologyKind::Ring, &live, 11).unwrap();
        let mut r = rng();
        for pos in 0..30 {
            let peer = sampler.sample(&directory, pos, &mut r).unwrap();
            let delta = (peer.index() as i64 - pos as i64).rem_euclid(30);
            assert!(
                delta == 1 || delta == 29,
                "ring neighbours only, got {peer}"
            );
        }
        assert_eq!(
            sampler.config(),
            SamplerConfig::StaticOverlay {
                topology: TopologyKind::Ring
            }
        );
    }

    #[test]
    fn static_overlay_departures_vacate_and_joins_reoccupy() {
        let live = ids(20);
        let directory = SliceDirectory::new(&live);
        let mut sampler =
            StaticOverlaySampler::new(TopologyKind::RandomRegular { degree: 4 }, &live, 13)
                .unwrap();
        sampler.on_depart(live[7]);
        assert_eq!(sampler.vertex_of(live[7]), None);
        // The vacated vertex's neighbours now occasionally fail the attempt.
        let newcomer = NodeId::new(500);
        sampler.on_join(newcomer, &directory);
        assert_eq!(sampler.vertex_of(newcomer), Some(7));
        // A join without a vacancy stays overlay-isolated.
        let extra = NodeId::new(501);
        sampler.on_join(extra, &directory);
        assert_eq!(sampler.vertex_of(extra), None);
        let mut r = rng();
        assert!(sampler.sample(&directory, 0, &mut r).is_some());
    }

    #[test]
    fn static_overlay_invalid_parameters_error() {
        let live = ids(5);
        assert!(
            StaticOverlaySampler::new(TopologyKind::RandomRegular { degree: 10 }, &live, 1)
                .is_err()
        );
    }
}
