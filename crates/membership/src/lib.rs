//! # peer-sampling
//!
//! A newscast-style peer-sampling (membership) service for gossip protocols.
//!
//! The aggregation paper assumes that "each node has a non-empty set of
//! neighbors" and explicitly delegates the maintenance of that set to
//! membership protocols that "maintain an approximately random topology"
//! (its references [5, 7, 9] — lpbcast, SCAMP and newscast). This crate
//! implements the newscast flavour: every node keeps a small *partial view* of
//! node descriptors tagged with an age; peers periodically exchange views,
//! merge them and keep the freshest entries. The emergent communication graph
//! is close to a random graph with out-degree equal to the view size — exactly
//! the "20-regular random" overlay the paper simulates.
//!
//! The crate offers three layers:
//!
//! * [`NodeDescriptor`] / [`PartialView`] — the data structures;
//! * [`NewscastNode`] — the per-node protocol state machine;
//! * [`NewscastNetwork`] — a whole-network driver that runs membership cycles
//!   and exports the instantaneous communication graph as an
//!   [`overlay_topology::ViewTopology`], ready to be consumed by the
//!   aggregation protocol or the simulator;
//! * [`NewscastSampler`] / [`StaticOverlaySampler`] — implementations of the
//!   engine-facing [`aggregate_core::sampler::PeerSampler`] interface, which
//!   is how the `gossip-sim` engines draw their exchange partners from a
//!   live NEWSCAST membership or a static overlay graph instead of the
//!   complete graph.
//!
//! ## Example
//!
//! ```
//! use peer_sampling::NewscastNetwork;
//! use overlay_topology::Topology;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! // 500 nodes, view size 20 (the paper's setting), bootstrapped from a ring.
//! let mut network = NewscastNetwork::bootstrap_ring(500, 20);
//! for _ in 0..20 {
//!     network.run_cycle(&mut rng);
//! }
//! let overlay = network.view_topology();
//! // Every node now has a full view of 20 approximately random neighbours.
//! assert!((0..500).all(|i| overlay.degree(overlay_topology::NodeId::new(i)) == 20));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod descriptor;
mod network;
mod newscast;
mod sampler;
mod service;
mod view;

pub use descriptor::NodeDescriptor;
pub use network::NewscastNetwork;
pub use newscast::NewscastNode;
pub use sampler::{NewscastSampler, StaticOverlaySampler};
pub use service::{PeerSampling, StaticPeerList};
pub use view::PartialView;
