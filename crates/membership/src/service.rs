//! The peer-sampling service abstraction.

use overlay_topology::NodeId;
use rand::RngCore;

/// A peer-sampling service: the interface the aggregation layer uses to obtain
/// gossip partners, independent of how neighbourhood information is
/// maintained.
///
/// Implementations include [`crate::NewscastNode`] (a real membership
/// protocol) and — trivially — any static neighbour list. The aggregation
/// paper's model corresponds to a service whose samples are uniformly random
/// over the whole network; newscast approximates this closely, which is why
/// the paper's convergence rates carry over to membership-fed deployments.
pub trait PeerSampling {
    /// Returns a peer to gossip with, approximately uniformly random over the
    /// service's current view of the network, or `None` when no peer is known.
    fn select_peer(&mut self, rng: &mut dyn RngCore) -> Option<NodeId>;

    /// The node identifiers currently known to the service.
    fn known_peers(&self) -> Vec<NodeId>;
}

/// A trivial peer-sampling service backed by a fixed list of peers.
///
/// Useful for tests, for bootstrapping, and as the adapter from a static
/// overlay graph to the [`PeerSampling`] interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticPeerList {
    peers: Vec<NodeId>,
}

impl StaticPeerList {
    /// Creates the service from a list of peers (duplicates are kept; they
    /// simply get proportionally more weight).
    pub fn new(peers: Vec<NodeId>) -> Self {
        StaticPeerList { peers }
    }
}

impl PeerSampling for StaticPeerList {
    fn select_peer(&mut self, rng: &mut dyn RngCore) -> Option<NodeId> {
        use rand::Rng;
        if self.peers.is_empty() {
            None
        } else {
            Some(self.peers[rng.gen_range(0..self.peers.len())])
        }
    }

    fn known_peers(&self) -> Vec<NodeId> {
        self.peers.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn static_list_samples_only_its_members() {
        let peers = vec![NodeId::new(1), NodeId::new(5), NodeId::new(9)];
        let mut service = StaticPeerList::new(peers.clone());
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        for _ in 0..100 {
            let peer = service.select_peer(&mut rng).unwrap();
            assert!(peers.contains(&peer));
        }
        assert_eq!(service.known_peers(), peers);
    }

    #[test]
    fn empty_list_returns_none() {
        let mut service = StaticPeerList::new(vec![]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        assert!(service.select_peer(&mut rng).is_none());
        assert!(service.known_peers().is_empty());
    }

    #[test]
    fn trait_is_object_safe() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut boxed: Box<dyn PeerSampling> = Box::new(StaticPeerList::new(vec![NodeId::new(2)]));
        assert_eq!(boxed.select_peer(&mut rng), Some(NodeId::new(2)));
    }
}
