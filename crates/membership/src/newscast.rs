//! The per-node newscast protocol state machine.

use crate::{NodeDescriptor, PartialView, PeerSampling};
use overlay_topology::NodeId;
use rand::RngCore;

/// The membership state of one node running the newscast protocol.
///
/// Once per membership cycle the node picks a peer from its view, the two
/// exchange their full views plus a fresh descriptor of themselves, and both
/// keep the `view_size` freshest descriptors of the union. The node also ages
/// its view every cycle, so descriptors of crashed nodes grow old and are
/// eventually pushed out — failure handling without a failure detector.
///
/// # Example
///
/// ```
/// use peer_sampling::{NewscastNode, PeerSampling};
/// use overlay_topology::NodeId;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut a = NewscastNode::new(NodeId::new(0), 4, &[NodeId::new(1)]);
/// let mut b = NewscastNode::new(NodeId::new(1), 4, &[NodeId::new(0)]);
///
/// // One exchange initiated by a.
/// let offer = a.prepare_exchange();
/// let response = b.accept_exchange(&offer);
/// a.complete_exchange(&response);
///
/// assert!(a.select_peer(&mut rng).is_some());
/// assert!(b.known_peers().contains(&NodeId::new(0)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NewscastNode {
    id: NodeId,
    view: PartialView,
}

impl NewscastNode {
    /// Creates a node with the given view size, seeded with `bootstrap`
    /// contacts (fresh descriptors).
    ///
    /// # Panics
    ///
    /// Panics if `view_size` is zero.
    pub fn new(id: NodeId, view_size: usize, bootstrap: &[NodeId]) -> Self {
        let mut view = PartialView::new(view_size);
        for &peer in bootstrap {
            if peer != id {
                view.insert(NodeDescriptor::fresh(peer));
            }
        }
        NewscastNode { id, view }
    }

    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Read access to the current view.
    pub fn view(&self) -> &PartialView {
        &self.view
    }

    /// Chooses the peer to exchange views with this cycle: the *oldest* known
    /// peer (newscast's heuristic; falls back to `None` on an empty view).
    pub fn exchange_partner(&self) -> Option<NodeId> {
        self.view.oldest_peer()
    }

    /// Produces the descriptor list this node sends in an exchange: its whole
    /// view plus a fresh descriptor of itself.
    pub fn prepare_exchange(&self) -> Vec<NodeDescriptor> {
        let mut payload: Vec<NodeDescriptor> = self.view.iter().copied().collect();
        payload.push(NodeDescriptor::fresh(self.id));
        payload
    }

    /// Passive side of an exchange: merges the received descriptors and
    /// returns this node's own payload (computed *before* the merge, so both
    /// sides see each other's pre-exchange views — mirroring the push–pull
    /// structure of the aggregation exchange).
    pub fn accept_exchange(&mut self, incoming: &[NodeDescriptor]) -> Vec<NodeDescriptor> {
        let response = self.prepare_exchange();
        self.view.merge(incoming, self.id);
        response
    }

    /// Active side, final step: merges the peer's response into the view.
    pub fn complete_exchange(&mut self, response: &[NodeDescriptor]) {
        self.view.merge(response, self.id);
    }

    /// Ends the membership cycle: ages every descriptor by one.
    pub fn end_cycle(&mut self) {
        self.view.age_all();
    }

    /// Drops a peer from the view (used when an exchange attempt failed).
    pub fn evict(&mut self, peer: NodeId) -> bool {
        self.view.remove(peer)
    }
}

impl PeerSampling for NewscastNode {
    fn select_peer(&mut self, rng: &mut dyn RngCore) -> Option<NodeId> {
        self.view.random_peer(rng)
    }

    fn known_peers(&self) -> Vec<NodeId> {
        self.view.node_ids()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(11)
    }

    #[test]
    fn bootstrap_excludes_self_references() {
        let node = NewscastNode::new(NodeId::new(0), 5, &[NodeId::new(0), NodeId::new(1)]);
        assert_eq!(node.known_peers(), vec![NodeId::new(1)]);
        assert_eq!(node.id(), NodeId::new(0));
    }

    #[test]
    fn exchange_spreads_membership_information() {
        // a knows b, b knows c; after one a<->b exchange a must know c too.
        let mut a = NewscastNode::new(NodeId::new(0), 5, &[NodeId::new(1)]);
        let mut b = NewscastNode::new(NodeId::new(1), 5, &[NodeId::new(2)]);
        let offer = a.prepare_exchange();
        let response = b.accept_exchange(&offer);
        a.complete_exchange(&response);
        assert!(a.known_peers().contains(&NodeId::new(2)));
        assert!(a.known_peers().contains(&NodeId::new(1)));
        assert!(b.known_peers().contains(&NodeId::new(0)));
        // Neither node ever lists itself.
        assert!(!a.known_peers().contains(&NodeId::new(0)));
        assert!(!b.known_peers().contains(&NodeId::new(1)));
    }

    #[test]
    fn payload_contains_a_fresh_self_descriptor() {
        let node = NewscastNode::new(NodeId::new(4), 3, &[NodeId::new(1)]);
        let payload = node.prepare_exchange();
        assert!(payload
            .iter()
            .any(|d| d.node == NodeId::new(4) && d.age == 0));
    }

    #[test]
    fn end_cycle_ages_the_view_and_partner_selection_prefers_old_entries() {
        let mut node = NewscastNode::new(NodeId::new(0), 4, &[NodeId::new(1), NodeId::new(2)]);
        node.end_cycle();
        node.view().iter().for_each(|d| assert_eq!(d.age, 1));
        // Make node 2 older explicitly by inserting node 1 fresh again.
        node.complete_exchange(&[NodeDescriptor::fresh(NodeId::new(1))]);
        assert_eq!(node.exchange_partner(), Some(NodeId::new(2)));
    }

    #[test]
    fn eviction_removes_failed_peers() {
        let mut node = NewscastNode::new(NodeId::new(0), 4, &[NodeId::new(1), NodeId::new(2)]);
        assert!(node.evict(NodeId::new(1)));
        assert!(!node.evict(NodeId::new(1)));
        assert_eq!(node.known_peers(), vec![NodeId::new(2)]);
    }

    #[test]
    fn peer_sampling_interface_draws_from_the_view() {
        let mut node = NewscastNode::new(
            NodeId::new(0),
            4,
            &[NodeId::new(1), NodeId::new(2), NodeId::new(3)],
        );
        let mut r = rng();
        for _ in 0..50 {
            let peer = node.select_peer(&mut r).unwrap();
            assert!(node.known_peers().contains(&peer));
            assert_ne!(peer, NodeId::new(0));
        }
        let mut empty = NewscastNode::new(NodeId::new(9), 4, &[]);
        assert!(empty.select_peer(&mut r).is_none());
    }
}
