//! Whole-network newscast driver.

use crate::{NewscastNode, PeerSampling};
use overlay_topology::{NodeId, ViewTopology};
use rand::seq::SliceRandom;
use rand::Rng;

/// A complete network of newscast nodes, driven cycle by cycle.
///
/// This is the piece that turns the membership substrate into something the
/// aggregation experiments can consume: after a few cycles of
/// [`NewscastNetwork::run_cycle`] the per-node views approximate a random
/// `view_size`-out-degree graph, which [`NewscastNetwork::view_topology`]
/// exports as an [`overlay_topology::ViewTopology`] for the aggregation
/// protocol or the simulator.
#[derive(Debug, Clone)]
pub struct NewscastNetwork {
    nodes: Vec<NewscastNode>,
    view_size: usize,
}

impl NewscastNetwork {
    /// Bootstraps `n` nodes whose initial views contain only their successor
    /// on a ring — the weakest sensible starting point; a handful of cycles
    /// suffices to randomise it.
    pub fn bootstrap_ring(n: usize, view_size: usize) -> Self {
        let nodes = (0..n)
            .map(|i| {
                let successor = NodeId::new((i + 1) % n.max(1));
                NewscastNode::new(NodeId::new(i), view_size, &[successor])
            })
            .collect();
        NewscastNetwork { nodes, view_size }
    }

    /// Bootstraps `n` nodes whose initial views contain `contacts_per_node`
    /// uniformly random contacts.
    pub fn bootstrap_random<R: Rng + ?Sized>(
        n: usize,
        view_size: usize,
        contacts_per_node: usize,
        rng: &mut R,
    ) -> Self {
        let nodes = (0..n)
            .map(|i| {
                let mut contacts = Vec::with_capacity(contacts_per_node);
                while contacts.len() < contacts_per_node && n > 1 {
                    let candidate = NodeId::new(rng.gen_range(0..n));
                    if candidate != NodeId::new(i) && !contacts.contains(&candidate) {
                        contacts.push(candidate);
                    }
                }
                NewscastNode::new(NodeId::new(i), view_size, &contacts)
            })
            .collect();
        NewscastNetwork { nodes, view_size }
    }

    /// Number of nodes in the network.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` when the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The configured view size.
    pub fn view_size(&self) -> usize {
        self.view_size
    }

    /// Read access to a node.
    pub fn node(&self, id: NodeId) -> &NewscastNode {
        &self.nodes[id.index()]
    }

    /// Runs one membership cycle: every node (in random order) exchanges views
    /// with its oldest known peer, then all views age by one.
    pub fn run_cycle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let n = self.nodes.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);
        for initiator in order {
            let Some(partner) = self.nodes[initiator].exchange_partner() else {
                continue;
            };
            let partner_idx = partner.index();
            if partner_idx == initiator || partner_idx >= n {
                continue;
            }
            let offer = self.nodes[initiator].prepare_exchange();
            let response = self.nodes[partner_idx].accept_exchange(&offer);
            self.nodes[initiator].complete_exchange(&response);
        }
        for node in &mut self.nodes {
            node.end_cycle();
        }
    }

    /// Exports the current directed views as a [`ViewTopology`].
    pub fn view_topology(&self) -> ViewTopology {
        let mut topology = ViewTopology::new(self.nodes.len());
        for node in &self.nodes {
            topology.set_view(node.id(), node.known_peers());
        }
        topology
    }

    /// In-degree of every node in the current views: how many other nodes list
    /// it. A healthy peer-sampling service keeps this distribution narrow
    /// (no node is systematically over- or under-represented).
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut degrees = vec![0usize; self.nodes.len()];
        for node in &self.nodes {
            for peer in node.known_peers() {
                degrees[peer.index()] += 1;
            }
        }
        degrees
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay_topology::Topology;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(23)
    }

    #[test]
    fn ring_bootstrap_creates_one_contact_per_node() {
        let network = NewscastNetwork::bootstrap_ring(10, 5);
        assert_eq!(network.len(), 10);
        assert!(!network.is_empty());
        assert_eq!(network.view_size(), 5);
        for i in 0..10 {
            assert_eq!(
                network.node(NodeId::new(i)).known_peers(),
                vec![NodeId::new((i + 1) % 10)]
            );
        }
    }

    #[test]
    fn random_bootstrap_gives_requested_contacts() {
        let mut r = rng();
        let network = NewscastNetwork::bootstrap_random(50, 8, 3, &mut r);
        for i in 0..50 {
            let peers = network.node(NodeId::new(i)).known_peers();
            assert_eq!(peers.len(), 3);
            assert!(!peers.contains(&NodeId::new(i)));
        }
    }

    #[test]
    fn views_fill_up_to_capacity_after_a_few_cycles() {
        let mut r = rng();
        let mut network = NewscastNetwork::bootstrap_ring(200, 10);
        for _ in 0..15 {
            network.run_cycle(&mut r);
        }
        let topology = network.view_topology();
        for i in 0..200 {
            assert_eq!(
                topology.degree(NodeId::new(i)),
                10,
                "node {i} has an under-full view"
            );
        }
    }

    #[test]
    fn emergent_overlay_is_connected_and_well_mixed() {
        let mut r = rng();
        let mut network = NewscastNetwork::bootstrap_ring(300, 15);
        for _ in 0..25 {
            network.run_cycle(&mut r);
        }
        // The union (undirected) graph of the views must be connected; check
        // via the in-degree distribution and a reachability walk over views.
        let in_degrees = network.in_degrees();
        assert!(
            in_degrees.iter().all(|&d| d > 0),
            "no node may be forgotten"
        );
        let max_in = *in_degrees.iter().max().unwrap();
        let mean_in: f64 = in_degrees.iter().sum::<usize>() as f64 / in_degrees.len() as f64;
        assert!(
            (max_in as f64) < 6.0 * mean_in,
            "in-degree distribution too skewed: max {max_in}, mean {mean_in}"
        );

        // Reachability from node 0 along directed view edges.
        let topology = network.view_topology();
        let mut visited = vec![false; 300];
        let mut stack = vec![NodeId::new(0)];
        visited[0] = true;
        while let Some(current) = stack.pop() {
            for peer in topology.view(current) {
                if !visited[peer.index()] {
                    visited[peer.index()] = true;
                    stack.push(*peer);
                }
            }
        }
        assert!(visited.iter().all(|&v| v), "overlay must stay connected");
    }

    #[test]
    fn degenerate_networks_do_not_panic() {
        let mut r = rng();
        let mut empty = NewscastNetwork::bootstrap_ring(0, 3);
        empty.run_cycle(&mut r);
        assert!(empty.is_empty());
        let mut single = NewscastNetwork::bootstrap_ring(1, 3);
        single.run_cycle(&mut r);
        assert_eq!(single.len(), 1);
    }
}
