//! Bounded partial views of node descriptors.

use crate::NodeDescriptor;
use overlay_topology::NodeId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A bounded set of [`NodeDescriptor`]s — the "neighbour set" a node knows
/// about.
///
/// The view never contains two descriptors for the same node (the younger one
/// wins) and never exceeds its capacity (the oldest entries are evicted
/// first), which is the newscast merge rule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartialView {
    capacity: usize,
    entries: Vec<NodeDescriptor>,
}

impl PartialView {
    /// Creates an empty view with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "view capacity must be positive");
        PartialView {
            capacity,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// The maximum number of descriptors the view can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The number of descriptors currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when the view holds no descriptors.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the descriptors (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = &NodeDescriptor> {
        self.entries.iter()
    }

    /// The node identifiers currently in the view.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.entries.iter().map(|d| d.node).collect()
    }

    /// Returns `true` if the view holds a descriptor for `node`.
    pub fn contains(&self, node: NodeId) -> bool {
        self.entries.iter().any(|d| d.node == node)
    }

    /// Inserts a descriptor, keeping only the youngest descriptor per node and
    /// evicting the oldest entries when the capacity is exceeded.
    pub fn insert(&mut self, descriptor: NodeDescriptor) {
        match self.entries.iter_mut().find(|d| d.node == descriptor.node) {
            Some(existing) => {
                if descriptor.age < existing.age {
                    existing.age = descriptor.age;
                }
            }
            None => {
                self.entries.push(descriptor);
                if self.entries.len() > self.capacity {
                    self.evict_oldest();
                }
            }
        }
    }

    /// Merges the descriptors received from a peer (the newscast merge): take
    /// the union, deduplicate keeping the youngest, keep the `capacity`
    /// freshest entries. `exclude` (normally the merging node itself) is never
    /// admitted into the view.
    pub fn merge(&mut self, incoming: &[NodeDescriptor], exclude: NodeId) {
        for descriptor in incoming {
            if descriptor.node != exclude {
                self.insert(*descriptor);
            }
        }
    }

    /// Increments the age of every descriptor by one cycle.
    pub fn age_all(&mut self) {
        for descriptor in &mut self.entries {
            *descriptor = descriptor.aged();
        }
    }

    /// Removes the descriptor of `node` (e.g. when an exchange with it failed
    /// and it is suspected to have crashed). Returns `true` if it was present.
    pub fn remove(&mut self, node: NodeId) -> bool {
        let before = self.entries.len();
        self.entries.retain(|d| d.node != node);
        before != self.entries.len()
    }

    /// Picks a uniformly random node from the view.
    pub fn random_peer<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeId> {
        if self.entries.is_empty() {
            None
        } else {
            Some(self.entries[rng.gen_range(0..self.entries.len())].node)
        }
    }

    /// Picks the *oldest* descriptor's node (newscast's partner-selection
    /// heuristic that speeds up the removal of stale descriptors).
    pub fn oldest_peer(&self) -> Option<NodeId> {
        self.entries.iter().max_by_key(|d| d.age).map(|d| d.node)
    }

    fn evict_oldest(&mut self) {
        while self.entries.len() > self.capacity {
            if let Some((idx, _)) = self.entries.iter().enumerate().max_by_key(|(_, d)| d.age) {
                self.entries.swap_remove(idx);
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(5)
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_is_rejected() {
        let _ = PartialView::new(0);
    }

    #[test]
    fn insert_deduplicates_keeping_the_youngest() {
        let mut view = PartialView::new(4);
        view.insert(NodeDescriptor::with_age(NodeId::new(1), 5));
        view.insert(NodeDescriptor::with_age(NodeId::new(1), 2));
        view.insert(NodeDescriptor::with_age(NodeId::new(1), 9));
        assert_eq!(view.len(), 1);
        assert_eq!(view.iter().next().unwrap().age, 2);
    }

    #[test]
    fn capacity_is_enforced_by_evicting_the_oldest() {
        let mut view = PartialView::new(2);
        view.insert(NodeDescriptor::with_age(NodeId::new(1), 7));
        view.insert(NodeDescriptor::with_age(NodeId::new(2), 1));
        view.insert(NodeDescriptor::with_age(NodeId::new(3), 3));
        assert_eq!(view.len(), 2);
        assert!(
            !view.contains(NodeId::new(1)),
            "oldest entry must be evicted"
        );
        assert!(view.contains(NodeId::new(2)));
        assert!(view.contains(NodeId::new(3)));
    }

    #[test]
    fn merge_excludes_self_and_respects_capacity() {
        let mut view = PartialView::new(3);
        let incoming = vec![
            NodeDescriptor::with_age(NodeId::new(0), 0), // self, must be excluded
            NodeDescriptor::with_age(NodeId::new(1), 4),
            NodeDescriptor::with_age(NodeId::new(2), 1),
            NodeDescriptor::with_age(NodeId::new(3), 2),
            NodeDescriptor::with_age(NodeId::new(4), 9),
        ];
        view.merge(&incoming, NodeId::new(0));
        assert_eq!(view.len(), 3);
        assert!(!view.contains(NodeId::new(0)));
        assert!(
            !view.contains(NodeId::new(4)),
            "the oldest descriptor loses"
        );
    }

    #[test]
    fn aging_and_removal() {
        let mut view = PartialView::new(3);
        view.insert(NodeDescriptor::fresh(NodeId::new(1)));
        view.insert(NodeDescriptor::with_age(NodeId::new(2), 3));
        view.age_all();
        let ages: Vec<u32> = view.iter().map(|d| d.age).collect();
        assert!(ages.contains(&1) && ages.contains(&4));
        assert!(view.remove(NodeId::new(1)));
        assert!(!view.remove(NodeId::new(1)));
        assert_eq!(view.len(), 1);
    }

    #[test]
    fn random_and_oldest_peer_selection() {
        let mut view = PartialView::new(4);
        assert!(view.random_peer(&mut rng()).is_none());
        assert!(view.oldest_peer().is_none());
        view.insert(NodeDescriptor::with_age(NodeId::new(1), 0));
        view.insert(NodeDescriptor::with_age(NodeId::new(2), 8));
        view.insert(NodeDescriptor::with_age(NodeId::new(3), 3));
        assert_eq!(view.oldest_peer(), Some(NodeId::new(2)));
        let mut r = rng();
        for _ in 0..50 {
            let peer = view.random_peer(&mut r).unwrap();
            assert!(view.contains(peer));
        }
    }

    #[test]
    fn node_ids_lists_current_members() {
        let mut view = PartialView::new(4);
        view.insert(NodeDescriptor::fresh(NodeId::new(7)));
        view.insert(NodeDescriptor::fresh(NodeId::new(9)));
        let mut ids = view.node_ids();
        ids.sort();
        assert_eq!(ids, vec![NodeId::new(7), NodeId::new(9)]);
        assert_eq!(view.capacity(), 4);
        assert!(!view.is_empty());
    }

    proptest! {
        /// The view never exceeds its capacity and never contains duplicates,
        /// no matter what descriptor stream is inserted.
        #[test]
        fn prop_capacity_and_uniqueness_invariants(
            capacity in 1usize..8,
            inserts in proptest::collection::vec((0u32..20, 0u32..50), 0..100),
        ) {
            let mut view = PartialView::new(capacity);
            for (node, age) in inserts {
                view.insert(NodeDescriptor::with_age(NodeId::new(node as usize), age));
                prop_assert!(view.len() <= capacity);
                let mut ids = view.node_ids();
                ids.sort();
                ids.dedup();
                prop_assert_eq!(ids.len(), view.len());
            }
        }
    }
}
