//! # gossip-bench
//!
//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation, plus ablations and performance micro-benchmarks.
//!
//! Each bench target is an ordinary binary (Criterion is used only by
//! `perf_micro`); running `cargo bench -p gossip-bench` executes all of them
//! and prints the same rows/series the paper reports, next to the theoretical
//! predictions. The mapping from paper artefact to bench target lives in the
//! workspace `DESIGN.md`; each target prints its measured-vs-paper numbers
//! to stdout (tee the output into a file to archive a run).
//!
//! ## Scaling knobs
//!
//! The defaults are chosen so that the whole suite finishes in a few minutes
//! on a laptop. The paper-scale settings can be restored through environment
//! variables (all optional):
//!
//! | variable | meaning | default | paper value |
//! |---|---|---|---|
//! | `GOSSIP_BENCH_RUNS` | independent runs per point (Figure 3a, tables) | 20 | 50 |
//! | `GOSSIP_FIG3B_RUNS` | independent runs per curve (Figure 3b) | 5 | 50 |
//! | `GOSSIP_FIG3B_NODES` | network size for Figure 3b | 100000 | 100000 |
//! | `GOSSIP_FIG4_NODES` | base network size for Figure 4 | 20000 | 100000 |
//! | `GOSSIP_FIG4_CYCLES` | simulated cycles for Figure 4 | 600 | 1000 |
//! | `GOSSIP_CHURN_CYCLES` | cycles for the churn-engine throughput bench | 1000 | 1000 |
//! | `GOSSIP_CHURN_FULL` | set to `1` to add the 100000-node churn-engine row | 0 | 1 |
//! | `GOSSIP_OVERLAY_NODES` | network size for the overlay sweep | 100000 | 100000–1000000 |
//! | `GOSSIP_OVERLAY_CYCLES` | cycles per overlay-sweep point | 20 | 20 |
//! | `GOSSIP_OVERLAY_SHARDS` | shard count for the overlay sweep | 4 | — |
//! | `GOSSIP_OVERLAY_CSV` | write the sweep table to this CSV path | unset | — |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Reads a `usize` configuration value from the environment, falling back to
/// `default` when the variable is unset or unparsable.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads a `u64` configuration value from the environment, falling back to
/// `default` when the variable is unset or unparsable.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Prints a standard experiment header so the bench output is self-describing
/// when tee'd into `bench_output.txt`.
pub fn print_header(experiment: &str, paper_artifact: &str, description: &str) {
    println!();
    println!("==============================================================================");
    println!("{experiment} — reproduces {paper_artifact}");
    println!("{description}");
    println!("==============================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_parsing_falls_back_to_defaults() {
        std::env::remove_var("GOSSIP_BENCH_TEST_VAR");
        assert_eq!(env_usize("GOSSIP_BENCH_TEST_VAR", 7), 7);
        assert_eq!(env_u64("GOSSIP_BENCH_TEST_VAR", 9), 9);
        std::env::set_var("GOSSIP_BENCH_TEST_VAR", "123");
        assert_eq!(env_usize("GOSSIP_BENCH_TEST_VAR", 7), 123);
        assert_eq!(env_u64("GOSSIP_BENCH_TEST_VAR", 9), 123);
        std::env::set_var("GOSSIP_BENCH_TEST_VAR", "not-a-number");
        assert_eq!(env_usize("GOSSIP_BENCH_TEST_VAR", 7), 7);
        std::env::remove_var("GOSSIP_BENCH_TEST_VAR");
    }
}
