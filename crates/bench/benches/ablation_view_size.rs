//! A1 — ablation: effect of the overlay view size (degree of the random
//! regular graph) on the per-cycle variance reduction. The paper fixes the
//! view size at 20 and observes no difference from the complete graph; this
//! ablation maps out where that stops being true.

use aggregate_core::{theory, SelectorKind};
use gossip_analysis::Table;
use gossip_bench::{env_u64, env_usize, print_header};
use gossip_sim::runner::VarianceExperiment;
use overlay_topology::TopologyKind;

fn main() {
    let nodes = env_usize("GOSSIP_ABLATION_NODES", 10_000);
    let runs = env_usize("GOSSIP_BENCH_RUNS", 20);
    let seed = env_u64("GOSSIP_BENCH_SEED", 20040102);

    print_header(
        "ablation_view_size",
        "view-size ablation (A1, extends Figure 3)",
        &format!(
            "First-cycle variance reduction of getPair_seq on k-regular random overlays, \
             N = {nodes}, {runs} runs per point. The paper's setting is k = 20; \
             the complete-graph reference rate is 1/(2*sqrt(e)) = {:.4}.",
            theory::seq_rate()
        ),
    );

    let degrees = [2usize, 3, 5, 10, 20, 40, 80];
    let mut table = Table::new(vec![
        "view size (degree)",
        "variance reduction (mean)",
        "std dev",
        "gap vs complete graph",
    ]);

    for &degree in &degrees {
        let experiment = VarianceExperiment::figure3(
            nodes,
            TopologyKind::RandomRegular { degree },
            SelectorKind::Sequential,
            1,
            runs,
            seed ^ degree as u64,
        );
        let summary = experiment
            .run_first_cycle()
            .expect("experiment configuration is valid");
        let gap = summary.mean - theory::seq_rate();
        table.add_row(vec![
            degree.to_string(),
            format!("{:.4}", summary.mean),
            format!("{:.4}", summary.std_dev),
            format!("{gap:+.4}"),
        ]);
    }

    // Complete-graph reference row.
    let complete = VarianceExperiment::figure3(
        nodes,
        TopologyKind::Complete,
        SelectorKind::Sequential,
        1,
        runs,
        seed,
    )
    .run_first_cycle()
    .expect("experiment configuration is valid");
    table.add_row(vec![
        "complete".to_string(),
        format!("{:.4}", complete.mean),
        format!("{:.4}", complete.std_dev),
        "+0.0000".to_string(),
    ]);

    println!("{}", table.to_aligned_text());
}
