//! P1 — performance micro-benchmarks (Criterion): elementary exchange cost,
//! one full AVG cycle, topology generation, wire codec and the newscast
//! membership cycle. These have no counterpart in the paper (which reports no
//! wall-clock numbers); they document the cost of the building blocks.

use aggregate_core::aggregate::{Aggregate, Average};
use aggregate_core::avg::run_avg_cycle;
use aggregate_core::node::ProtocolNode;
use aggregate_core::selectors::SequentialSelector;
use aggregate_core::ProtocolConfig;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gossip_net::codec;
use overlay_topology::{generators, CompleteTopology, NodeId};
use peer_sampling::NewscastNetwork;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_elementary_exchange(c: &mut Criterion) {
    c.bench_function("elementary_merge_average", |b| {
        b.iter(|| black_box(Average.merge(black_box(1.5), black_box(2.5))))
    });

    c.bench_function("push_pull_exchange_between_two_nodes", |b| {
        let config = ProtocolConfig::default();
        b.iter_batched(
            || {
                (
                    ProtocolNode::new(NodeId::new(0), config, 1.0),
                    ProtocolNode::new(NodeId::new(1), config, 9.0),
                )
            },
            |(mut a, mut other)| {
                for push in a.begin_exchange(NodeId::new(1)) {
                    if let Some(reply) = other.handle_message(push) {
                        a.handle_message(reply);
                    }
                }
                black_box((a, other))
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_avg_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("avg_cycle");
    group.sample_size(20);
    for &n in &[1_000usize, 10_000] {
        group.bench_function(format!("sequential_complete_n{n}"), |b| {
            let topo = CompleteTopology::new(n);
            b.iter_batched(
                || {
                    let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
                    (
                        values,
                        SequentialSelector::new(),
                        rand::rngs::StdRng::seed_from_u64(1),
                    )
                },
                |(mut values, mut selector, mut rng)| {
                    run_avg_cycle(&mut values, &topo, &mut selector, &mut rng, 0).unwrap()
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_topology_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology_generation");
    group.sample_size(10);
    group.bench_function("random_regular_n10000_k20", |b| {
        b.iter(|| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(7);
            generators::random_regular(10_000, 20, &mut rng).unwrap()
        })
    });
    group.bench_function("erdos_renyi_n10000_p0.002", |b| {
        b.iter(|| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(7);
            generators::erdos_renyi(10_000, 0.002, &mut rng).unwrap()
        })
    });
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let message = aggregate_core::GossipMessage::Push {
        from: NodeId::new(12),
        to: NodeId::new(99),
        instance: aggregate_core::InstanceTag(3),
        epoch: 42,
        value: 3.25,
    };
    c.bench_function("codec_encode", |b| {
        b.iter(|| codec::encode(black_box(&message)))
    });
    let frame = codec::encode(&message);
    c.bench_function("codec_decode", |b| {
        b.iter(|| codec::decode(black_box(&frame)).unwrap())
    });
}

fn bench_membership_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("membership");
    group.sample_size(10);
    group.bench_function("newscast_cycle_n1000_view20", |b| {
        b.iter_batched(
            || {
                (
                    NewscastNetwork::bootstrap_ring(1_000, 20),
                    rand::rngs::StdRng::seed_from_u64(3),
                )
            },
            |(mut network, mut rng)| {
                network.run_cycle(&mut rng);
                black_box(network)
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_elementary_exchange,
    bench_avg_cycle,
    bench_topology_generation,
    bench_codec,
    bench_membership_cycle
);
criterion_main!(benches);
