//! E3 — Figure 3(b): average variance reduction (σ²ᵢ/σ²ᵢ₋₁) for every cycle
//! while iterating AVG on a network of 100 000 nodes, for getPair_rand and
//! getPair_seq on the complete and 20-regular random topologies.

use aggregate_core::{theory, SelectorKind};
use gossip_analysis::{Series, Table};
use gossip_bench::{env_u64, env_usize, print_header};
use gossip_sim::runner::VarianceExperiment;
use overlay_topology::TopologyKind;

fn main() {
    let runs = env_usize("GOSSIP_FIG3B_RUNS", 5);
    let nodes = env_usize("GOSSIP_FIG3B_NODES", 100_000);
    let cycles = env_usize("GOSSIP_FIG3B_CYCLES", 30);
    let seed = env_u64("GOSSIP_BENCH_SEED", 20040102);

    print_header(
        "figure3b",
        "Figure 3(b)",
        &format!(
            "Per-cycle variance reduction while iterating AVG, N = {nodes}, cycles 1..{cycles}, \
             {runs} runs per curve (the paper uses 50). Reference lines: 1/e = {:.3}, \
             1/(2*sqrt(e)) = {:.3}.",
            theory::rand_rate(),
            theory::seq_rate()
        ),
    );

    let configurations = [
        (
            SelectorKind::RandomEdge,
            TopologyKind::Complete,
            "getPair_rand, complete",
        ),
        (
            SelectorKind::RandomEdge,
            TopologyKind::RandomRegular { degree: 20 },
            "getPair_rand, 20-reg. random",
        ),
        (
            SelectorKind::Sequential,
            TopologyKind::Complete,
            "getPair_seq, complete",
        ),
        (
            SelectorKind::Sequential,
            TopologyKind::RandomRegular { degree: 20 },
            "getPair_seq, 20-reg. random",
        ),
    ];

    let mut table = Table::new(vec!["cycle", "series", "variance reduction", "std dev"]);
    let mut blocks = Vec::new();

    for (selector, topology, label) in configurations {
        let experiment = VarianceExperiment::figure3(
            nodes,
            topology,
            selector,
            cycles,
            runs,
            seed ^ label.len() as u64,
        );
        let summaries = experiment.run().expect("experiment configuration is valid");
        let mut series = Series::new(label);
        for (cycle, summary) in summaries.iter().enumerate() {
            series.push_with_range((cycle + 1) as f64, summary.mean, summary.min, summary.max);
            // Print every 5th cycle in the table to keep it readable; the full
            // series is emitted below.
            if (cycle + 1) % 5 == 0 {
                table.add_row(vec![
                    (cycle + 1).to_string(),
                    label.to_string(),
                    format!("{:.4}", summary.mean),
                    format!("{:.4}", summary.std_dev),
                ]);
            }
        }
        blocks.push(series.to_data_block());
    }

    println!("{}", table.to_aligned_text());
    println!("gnuplot-ready series (x = cycle, y = sigma_i^2/sigma_(i-1)^2):\n");
    for block in blocks {
        println!("{block}");
    }
}
