//! P2 — churn-engine throughput: cycles/second and arena footprint of the
//! slot-reclaiming cycle engine under the Figure 4 oscillation at several
//! scales. No counterpart in the paper (which reports no wall-clock numbers);
//! this is the engine-health benchmark behind the "full-scale Figure 4" runs.
//!
//! Set `GOSSIP_CHURN_FULL=1` to append the paper-scale row (90 000–110 000
//! nodes, 1 000 cycles — tens of seconds in release mode).

use gossip_analysis::Table;
use gossip_bench::{env_u64, env_usize, print_header};
use gossip_sim::runner::{ChurnReport, ChurnRunner, SizeEstimationScenario};

fn run_scale(base_nodes: usize, cycles: usize, seed: u64) -> (SizeEstimationScenario, ChurnReport) {
    let scenario = if base_nodes == 100_000 {
        SizeEstimationScenario {
            total_cycles: cycles,
            ..SizeEstimationScenario::figure4(seed)
        }
    } else {
        SizeEstimationScenario::figure4_scaled(base_nodes, cycles, seed)
    };
    let report = ChurnRunner::new(scenario)
        .run()
        .expect("scenario configuration is valid");
    (scenario, report)
}

fn main() {
    let cycles = env_usize("GOSSIP_CHURN_CYCLES", 1_000);
    let seed = env_u64("GOSSIP_BENCH_SEED", 20040102);
    let full = env_usize("GOSSIP_CHURN_FULL", 0) == 1;

    print_header(
        "churn_engine",
        "engine throughput (beyond the paper)",
        &format!(
            "Cycles/second and node-arena footprint of the cycle engine driving the \
             Figure 4 oscillation (±10% size, 0.1% per-cycle fluctuation) for {cycles} \
             cycles. The arena bound column is max_size + 2*fluctuation: exceeding it \
             would mean the free list leaks. Set GOSSIP_CHURN_FULL=1 for the \
             100000-node paper-scale row."
        ),
    );

    let mut scales = vec![1_000usize, 10_000];
    if full {
        scales.push(100_000);
    }

    let mut table = Table::new(vec![
        "base size",
        "cycles",
        "cycles/s",
        "elapsed (s)",
        "peak live",
        "peak slots",
        "slot bound",
        "tracking error",
    ]);
    for base in scales {
        let (scenario, report) = run_scale(base, cycles, seed);
        let bound = scenario.churn.max_size + 2 * scenario.churn.fluctuation_per_cycle;
        assert!(
            report.peak_slot_capacity <= bound,
            "arena leaked at base size {base}: {} > {bound}",
            report.peak_slot_capacity
        );
        table.add_row(vec![
            base.to_string(),
            report.cycles.to_string(),
            format!("{:.1}", report.cycles_per_second),
            format!("{:.2}", report.elapsed_seconds),
            report.peak_live_nodes.to_string(),
            report.peak_slot_capacity.to_string(),
            bound.to_string(),
            report
                .mean_tracking_error()
                .map_or("n/a".to_string(), |e| format!("{:.2}%", e * 100.0)),
        ]);
    }
    println!("{}", table.to_aligned_text());
}
