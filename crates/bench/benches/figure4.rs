//! E4 — Figure 4: network size estimation by anti-entropy counting under
//! churn (oscillating size plus per-cycle fluctuation), epochs of 30 cycles.

use gossip_analysis::{Series, Table};
use gossip_bench::{env_u64, env_usize, print_header};
use gossip_sim::runner::SizeEstimationScenario;

fn main() {
    let base_nodes = env_usize("GOSSIP_FIG4_NODES", 20_000);
    let cycles = env_usize("GOSSIP_FIG4_CYCLES", 600);
    let seed = env_u64("GOSSIP_BENCH_SEED", 20040102);

    print_header(
        "figure4",
        "Figure 4",
        &format!(
            "Network size estimation by anti-entropy counting. Base size {base_nodes} \
             (paper: 100000), oscillation ±10% over 500 cycles, 0.1% per-cycle fluctuation, \
             epochs of 30 cycles, {cycles} cycles total (paper: 1000). Set \
             GOSSIP_FIG4_NODES=100000 GOSSIP_FIG4_CYCLES=1000 for the full-scale run."
        ),
    );

    let scenario = if base_nodes == 100_000 {
        SizeEstimationScenario {
            total_cycles: cycles,
            ..SizeEstimationScenario::figure4(seed)
        }
    } else {
        SizeEstimationScenario::figure4_scaled(base_nodes, cycles, seed)
    };

    let points = scenario.run().expect("scenario configuration is valid");

    let mut table = Table::new(vec![
        "cycle",
        "epoch",
        "actual size",
        "estimate (mean)",
        "estimate (min)",
        "estimate (max)",
        "reporting nodes",
        "relative error",
    ]);
    let mut estimate_series = Series::new("size estimate");
    let mut actual_series = Series::new("actual size of the network");

    for point in &points {
        let relative_error =
            (point.estimate_mean - point.actual_size as f64).abs() / point.actual_size as f64;
        table.add_row(vec![
            point.cycle.to_string(),
            point.epoch.to_string(),
            point.actual_size.to_string(),
            format!("{:.0}", point.estimate_mean),
            format!("{:.0}", point.estimate_min),
            format!("{:.0}", point.estimate_max),
            point.reporting_nodes.to_string(),
            format!("{:.2}%", relative_error * 100.0),
        ]);
        estimate_series.push_with_range(
            point.cycle as f64,
            point.estimate_mean,
            point.estimate_min,
            point.estimate_max,
        );
        actual_series.push(point.cycle as f64, point.actual_size as f64);
    }

    println!("{}", table.to_aligned_text());
    println!("gnuplot-ready series (x = cycle, y = network size, error bars = node range):\n");
    println!("{}", estimate_series.to_data_block());
    println!("{}", actual_series.to_data_block());

    // Headline numbers: tracking error after the bootstrap epoch.
    let tracked: Vec<f64> = points
        .iter()
        .skip(1)
        .map(|p| (p.estimate_mean - p.actual_size as f64).abs() / p.actual_size as f64)
        .collect();
    if !tracked.is_empty() {
        let mean_err = tracked.iter().sum::<f64>() / tracked.len() as f64;
        println!(
            "mean relative tracking error after the first epoch: {:.2}% over {} epochs",
            mean_err * 100.0,
            tracked.len()
        );
    }
}
