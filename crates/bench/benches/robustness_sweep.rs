//! E12 — robustness sweep: convergence factor vs fault rate (Section 4's
//! graceful-degradation experiments) at the 10⁵-node scale the sharded
//! engine makes routine.
//!
//! Sweeps persistent link failures and uniform message omission at
//! {0, 0.05, 0.1, 0.2}, the value-injection adversary at 5 %/10 % corrupted
//! nodes, and the size-estimation-error-vs-crash-rate curve — all driven by
//! `gossip-faults` fault plans through the real engines. The headline
//! acceptance claim is asserted: with 20 % of links dead the convergence
//! factor degrades (≈0.40 vs the fault-free 1/(2√e) ≈ 0.303) but the
//! protocol still converges.
//!
//! Knobs: `GOSSIP_ROBUSTNESS_NODES` (default 100000),
//! `GOSSIP_ROBUSTNESS_CYCLES` (default 20), `GOSSIP_ROBUSTNESS_SHARDS`
//! (default 4), `GOSSIP_ROBUSTNESS_CSV` (write the stacked curves as CSV),
//! `GOSSIP_BENCH_SEED`.

use aggregate_core::theory;
use gossip_bench::{env_u64, env_usize, print_header};
use gossip_sim::robustness::{crash_estimation_curve, crash_table, sweep_table};
use gossip_sim::RobustnessSweep;

fn main() {
    let nodes = env_usize("GOSSIP_ROBUSTNESS_NODES", 100_000);
    let cycles = env_usize("GOSSIP_ROBUSTNESS_CYCLES", 20);
    let shards = env_usize("GOSSIP_ROBUSTNESS_SHARDS", 4);
    let seed = env_u64("GOSSIP_BENCH_SEED", 20040102);

    print_header(
        "robustness_sweep",
        "Section 4 (robustness: link failures, crashes, message omission)",
        &format!(
            "Convergence factor vs fault rate, N = {nodes}, {cycles} cycles, \
             {shards}-shard engine. Fault-free GETPAIR_SEQ reference \
             1/(2*sqrt(e)) = {:.4}.",
            theory::seq_rate()
        ),
    );

    let sweep = RobustnessSweep {
        nodes,
        cycles,
        shards,
        seed,
    };
    let rates = [0.0, 0.05, 0.1, 0.2];
    let link_points = sweep
        .link_failure_curve(&rates)
        .expect("link sweep configuration is valid");
    let loss_points = sweep
        .loss_curve(&rates)
        .expect("loss sweep configuration is valid");
    let injection_points = sweep
        .injection_curve(&[0.05, 0.1], 100.0)
        .expect("injection sweep configuration is valid");

    let mut table = sweep_table(&link_points);
    table.append(&sweep_table(&loss_points));
    table.append(&sweep_table(&injection_points));
    println!("{table}");

    // Crash-rate curve at a fixed counting scale (epoch-bound, so the cost
    // is independent of the sweep size above).
    let crash_nodes = nodes.min(10_000);
    let crash_points = crash_estimation_curve(crash_nodes, 30, &rates, seed)
        .expect("crash curve configuration is valid");
    println!("size-estimation error vs crash rate at epoch start ({crash_nodes} nodes):");
    println!("{}", crash_table(&crash_points));

    if let Ok(path) = std::env::var("GOSSIP_ROBUSTNESS_CSV") {
        table.write_csv(&path).expect("CSV path is writable");
        println!("(wrote {path})");
    }

    // The acceptance claim, asserted at scale: 20 % dead links degrade the
    // factor but the protocol still converges geometrically.
    let baseline = link_points[0].mean_factor;
    assert!(
        (baseline - theory::seq_rate()).abs() < 0.05,
        "fault-free factor {baseline} must sit near the SEQ rate"
    );
    let worst = link_points.last().unwrap();
    assert!(
        worst.mean_factor < 0.55 && worst.final_variance < 1e-2,
        "20% dead links must degrade gracefully (factor {}, variance {})",
        worst.mean_factor,
        worst.final_variance
    );
    for point in &loss_points {
        assert!(
            point.mean_factor < 0.7 && point.final_variance < 1e-2,
            "loss {} must degrade gracefully (factor {}, variance {})",
            point.rate,
            point.mean_factor,
            point.final_variance
        );
    }
    println!("robustness sweep OK: graceful degradation holds at N = {nodes}");
}
