//! E1 — the convergence-rate "table" of Section 3.3: per-cycle variance
//! reduction of every GETPAIR implementation vs the paper's closed forms
//! (1/4, 1/e, 1/(2√e)).

use aggregate_core::{theory, SelectorKind};
use gossip_analysis::Table;
use gossip_bench::{env_u64, env_usize, print_header};
use gossip_sim::runner::VarianceExperiment;
use overlay_topology::TopologyKind;

fn main() {
    let runs = env_usize("GOSSIP_BENCH_RUNS", 20);
    let nodes = env_usize("GOSSIP_TABLE_NODES", 20_000);
    let seed = env_u64("GOSSIP_BENCH_SEED", 20040102);

    print_header(
        "table_convergence_rates",
        "Section 3.3 convergence rates (E1)",
        &format!(
            "One cycle of AVG on {nodes} uncorrelated uniform values, complete topology, \
             {runs} runs per selector; empirical reduction factor vs closed form."
        ),
    );

    let mut table = Table::new(vec![
        "selector",
        "measured E(sigma1^2/sigma0^2)",
        "std dev",
        "paper closed form",
        "relative error",
    ]);

    for selector in SelectorKind::all() {
        let experiment = VarianceExperiment::figure3(
            nodes,
            TopologyKind::Complete,
            selector,
            1,
            runs,
            seed ^ selector.paper_name().len() as u64,
        );
        let summary = experiment
            .run_first_cycle()
            .expect("experiment configuration is valid");
        let predicted = selector.theoretical_rate();
        let relative = (summary.mean - predicted).abs() / predicted;
        table.add_row(vec![
            selector.paper_name().to_string(),
            format!("{:.4}", summary.mean),
            format!("{:.4}", summary.std_dev),
            format!("{predicted:.4}"),
            format!("{:.2}%", relative * 100.0),
        ]);
    }

    println!("{}", table.to_aligned_text());
    println!(
        "reference constants: 1/4 = {:.4}, 1/e = {:.4}, 1/(2*sqrt(e)) = {:.4}",
        theory::PM_RATE,
        theory::rand_rate(),
        theory::seq_rate()
    );
}
