//! E11 — overlay sweep: per-cycle convergence factor vs peer-sampling layer
//! (complete graph, static overlay families, live NEWSCAST at several cache
//! sizes), at the 10⁵-node scale the sharded engine makes routine.
//!
//! Reproduces the paper's Section 5 robustness claim: aggregation driven by
//! a NEWSCAST membership service with cache size `c ≥ 20` converges at
//! nearly the rate of uniform sampling — the node-level engines realise
//! `GETPAIR_SEQ` (rate 1/(2√e) ≈ 0.303), and a frozen NEWSCAST view
//! topology under `GETPAIR_RAND` measures against 1/e ≈ 0.368.
//!
//! Knobs: `GOSSIP_OVERLAY_NODES` (default 100000), `GOSSIP_OVERLAY_CYCLES`
//! (default 20), `GOSSIP_OVERLAY_SHARDS` (default 4; the engine sweep runs
//! sharded), `GOSSIP_OVERLAY_CSV` (write the sweep table as CSV),
//! `GOSSIP_BENCH_SEED`.

use aggregate_core::theory;
use gossip_bench::{env_u64, env_usize, print_header};
use gossip_sim::overlay::{newscast_snapshot_factor, overlay_sweep};

fn main() {
    let nodes = env_usize("GOSSIP_OVERLAY_NODES", 100_000);
    let cycles = env_usize("GOSSIP_OVERLAY_CYCLES", 20);
    let shards = env_usize("GOSSIP_OVERLAY_SHARDS", 4);
    let seed = env_u64("GOSSIP_BENCH_SEED", 20040102);

    print_header(
        "overlay_sweep",
        "Section 5 (overlay dependence) / Figure 3(b)",
        &format!(
            "Convergence factor vs peer-sampling layer, N = {nodes}, {cycles} cycles, \
             {shards}-shard engine. GETPAIR_SEQ reference 1/(2*sqrt(e)) = {:.4}; \
             GETPAIR_RAND reference 1/e = {:.4}.",
            theory::seq_rate(),
            theory::rand_rate()
        ),
    );

    let caches = [10usize, 20, 40];
    let (measurements, table) =
        overlay_sweep(nodes, cycles, &caches, shards, seed).expect("sweep configuration is valid");
    println!("{table}");

    if let Ok(path) = std::env::var("GOSSIP_OVERLAY_CSV") {
        table.write_csv(&path).expect("CSV path is writable");
        println!("(wrote {path})");
    }

    // The robustness claim, asserted at scale: NEWSCAST with c >= 20 within
    // 10 % of the uniform-complete factor measured by the same engine.
    let uniform = measurements[0].mean_factor;
    for m in &measurements {
        if let aggregate_core::SamplerConfig::Newscast { cache_size } = m.sampler {
            let ratio = m.mean_factor / uniform;
            println!(
                "newscast c={cache_size}: factor {:.4} ({ratio:.3}x uniform)",
                m.mean_factor
            );
            if cache_size >= 20 {
                assert!(
                    (ratio - 1.0).abs() < 0.1,
                    "c={cache_size} must stay within 10% of uniform"
                );
            }
        }
    }

    // Vector-level cross-check on a frozen NEWSCAST snapshot: GETPAIR_RAND
    // over the emergent c-out overlay measures the uniform-random rate.
    let snapshot_nodes = nodes.min(20_000);
    let summary = newscast_snapshot_factor(snapshot_nodes, 20, 30, 5, seed)
        .expect("snapshot configuration is valid");
    println!(
        "newscast snapshot (c=20, N={snapshot_nodes}), getPair_rand: {:.4} ± {:.4} \
         vs 1/e = {:.4}",
        summary.mean,
        summary.std_dev,
        theory::rand_rate()
    );
    assert!(
        (summary.mean - theory::rand_rate()).abs() / theory::rand_rate() < 0.1,
        "frozen NEWSCAST overlay must reproduce the uniform-random rate within 10%"
    );
}
