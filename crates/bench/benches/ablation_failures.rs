//! A2 — ablation: robustness to message loss and correlated node crashes.
//! The paper argues qualitatively that the protocol tolerates failures; this
//! bench quantifies the accuracy degradation.

use gossip_analysis::Table;
use gossip_bench::{env_u64, env_usize, print_header};
use gossip_sim::runner::robustness_run;
use gossip_sim::NetworkConditions;

fn main() {
    let nodes = env_usize("GOSSIP_ABLATION_NODES", 5_000);
    let cycles = env_usize("GOSSIP_ABLATION_CYCLES", 20);
    let seed = env_u64("GOSSIP_BENCH_SEED", 20040102);

    print_header(
        "ablation_failures",
        "failure-injection ablation (A2)",
        &format!(
            "Averaging over {nodes} nodes holding uniform [0,1) values for {cycles} cycles \
             under message loss and crash events; accuracy measured against the surviving \
             nodes' true average."
        ),
    );

    let mut table = Table::new(vec![
        "scenario",
        "mean relative error",
        "final variance",
        "surviving nodes",
    ]);

    // Message-loss sweep.
    for loss in [0.0, 0.05, 0.1, 0.2, 0.4] {
        let result = robustness_run(
            nodes,
            cycles,
            NetworkConditions::with_message_loss(loss),
            seed ^ (loss * 1000.0) as u64,
        )
        .expect("valid configuration");
        table.add_row(vec![
            format!("message loss {:.0}%", loss * 100.0),
            format!("{:.4}%", result.mean_relative_error * 100.0),
            format!("{:.2e}", result.final_variance),
            result.surviving_nodes.to_string(),
        ]);
    }

    // Crash sweep: a fraction of the nodes dies at cycle 5.
    for crash in [0.1, 0.25, 0.5] {
        let result = robustness_run(
            nodes,
            cycles,
            NetworkConditions::with_crash(crash, 5),
            seed ^ (crash * 10_000.0) as u64,
        )
        .expect("valid configuration");
        table.add_row(vec![
            format!("crash of {:.0}% of nodes at cycle 5", crash * 100.0),
            format!("{:.4}%", result.mean_relative_error * 100.0),
            format!("{:.2e}", result.final_variance),
            result.surviving_nodes.to_string(),
        ]);
    }

    println!("{}", table.to_aligned_text());
    println!(
        "note: message loss only delays convergence; crashes bias the average by the mass \
         held by crashed nodes at the moment of the crash, until the next epoch restart."
    );
}
