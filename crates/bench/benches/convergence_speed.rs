//! E5 — the Section 5 efficiency claim: "Even in the worst case we examined,
//! with GETPAIR_RAND, the variance over the network will decrease 99.9% in
//! ln 1000 ≈ 7 cycles of AVG." This bench measures, for every selector, how
//! many cycles it actually takes to reach a 10⁻³ variance ratio and compares
//! with the theoretical cycle counts.

use aggregate_core::{theory, SelectorKind};
use gossip_analysis::Table;
use gossip_bench::{env_u64, env_usize, print_header};
use gossip_sim::runner::single_run_reports;
use gossip_sim::ValueDistribution;
use overlay_topology::TopologyKind;

fn main() {
    let nodes = env_usize("GOSSIP_SPEED_NODES", 50_000);
    let runs = env_usize("GOSSIP_SPEED_RUNS", 10);
    let seed = env_u64("GOSSIP_BENCH_SEED", 20040102);
    let target = 1e-3;

    print_header(
        "convergence_speed",
        "Section 5 claim: 99.9% variance reduction in ~7 cycles (E5)",
        &format!(
            "Cycles needed to shrink the variance to 0.1% of its initial value, \
             N = {nodes}, {runs} runs per selector, complete topology."
        ),
    );

    let mut table = Table::new(vec![
        "selector",
        "measured cycles (mean)",
        "measured cycles (max)",
        "theoretical cycles",
    ]);

    for selector in SelectorKind::all() {
        let mut measured = Vec::new();
        for run in 0..runs {
            let reports = single_run_reports(
                nodes,
                TopologyKind::Complete,
                selector,
                25,
                ValueDistribution::Uniform { lo: 0.0, hi: 1.0 },
                seed ^ (run as u64) << 8 ^ selector.paper_name().len() as u64,
            )
            .expect("experiment configuration is valid");
            let initial = reports[0].variance_before;
            let cycles_needed = reports
                .iter()
                .position(|r| r.variance_after <= target * initial)
                .map(|idx| idx + 1)
                .unwrap_or(reports.len());
            measured.push(cycles_needed as f64);
        }
        let mean = measured.iter().sum::<f64>() / measured.len() as f64;
        let max = measured.iter().cloned().fold(0.0f64, f64::max);
        let theoretical =
            theory::cycles_for_accuracy(selector.theoretical_rate(), target).expect("valid rate");
        table.add_row(vec![
            selector.paper_name().to_string(),
            format!("{mean:.1}"),
            format!("{max:.0}"),
            theoretical.to_string(),
        ]);
    }

    println!("{}", table.to_aligned_text());
    println!(
        "paper claim: getPair_rand needs ln(1000) ≈ {:.1} → 7 cycles for a 99.9% reduction",
        1000f64.ln()
    );
}
