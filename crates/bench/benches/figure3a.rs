//! E2 — Figure 3(a): average variance reduction after one execution of AVG
//! (σ²₁/σ²₀) as a function of network size, for getPair_rand and getPair_seq
//! on the complete and the 20-regular random topologies.

use aggregate_core::{theory, SelectorKind};
use gossip_analysis::{Series, Table};
use gossip_bench::{env_u64, env_usize, print_header};
use gossip_sim::runner::VarianceExperiment;
use overlay_topology::TopologyKind;

fn main() {
    let runs = env_usize("GOSSIP_BENCH_RUNS", 20);
    let max_n = env_usize("GOSSIP_FIG3A_MAX_NODES", 100_000);
    let seed = env_u64("GOSSIP_BENCH_SEED", 20040102);

    print_header(
        "figure3a",
        "Figure 3(a)",
        &format!(
            "Variance reduction after one execution of AVG vs network size \
             ({runs} runs per point; the paper uses 50). Dotted reference lines: \
             1/e = {:.3} (rand) and 1/(2*sqrt(e)) = {:.3} (seq).",
            theory::rand_rate(),
            theory::seq_rate()
        ),
    );

    let sizes: Vec<usize> = [100usize, 1_000, 10_000, 100_000]
        .into_iter()
        .filter(|&n| n <= max_n)
        .collect();
    let configurations = [
        (
            SelectorKind::RandomEdge,
            TopologyKind::Complete,
            "getPair_rand, complete",
        ),
        (
            SelectorKind::RandomEdge,
            TopologyKind::RandomRegular { degree: 20 },
            "getPair_rand, 20-reg. random",
        ),
        (
            SelectorKind::Sequential,
            TopologyKind::Complete,
            "getPair_seq, complete",
        ),
        (
            SelectorKind::Sequential,
            TopologyKind::RandomRegular { degree: 20 },
            "getPair_seq, 20-reg. random",
        ),
    ];

    let mut table = Table::new(vec![
        "network size",
        "series",
        "variance reduction (mean)",
        "std dev",
        "theoretical",
    ]);
    let mut blocks = Vec::new();

    for (selector, topology, label) in configurations {
        let mut series = Series::new(label);
        for &n in &sizes {
            let experiment =
                VarianceExperiment::figure3(n, topology, selector, 1, runs, seed ^ n as u64);
            let summary = experiment
                .run_first_cycle()
                .expect("experiment configuration is valid");
            series.push_with_range(
                n as f64,
                summary.mean,
                summary.mean - summary.std_dev,
                summary.mean + summary.std_dev,
            );
            table.add_row(vec![
                n.to_string(),
                label.to_string(),
                format!("{:.4}", summary.mean),
                format!("{:.4}", summary.std_dev),
                format!("{:.4}", selector.theoretical_rate()),
            ]);
        }
        blocks.push(series.to_data_block());
    }

    println!("{}", table.to_aligned_text());
    println!("gnuplot-ready series (x = network size, y = sigma1^2/sigma0^2):\n");
    for block in blocks {
        println!("{block}");
    }
}
