//! P3 — sharded-engine throughput: cycles/second of the multi-threaded
//! sharded cycle engine versus the single-threaded reference engine on the
//! identical workload, swept over 1/2/4/8 shards. No counterpart in the
//! paper (which reports no wall-clock numbers); this is the engine the
//! million-node epochs run on, and the table below is the source of the
//! README scaling numbers.
//!
//! The sweep also cross-checks semantics: every shard count must converge to
//! the same variance trajectory (node values are shard-count invariant; see
//! `tests/determinism.rs`).
//!
//! Environment knobs: `GOSSIP_SHARD_NODES` (default 100 000),
//! `GOSSIP_SHARD_CYCLES` (default 20), `GOSSIP_SHARD_REPS` (default 3 —
//! each engine configuration is measured this many times, interleaved, and
//! the speedup column is the median of the per-repetition ratios, which is
//! what survives the 2x machine-weather drift of shared runners) and
//! `GOSSIP_BENCH_SEED`. The CSV artifacts land in
//! `target/sharded_engine.csv` (the sweep) and
//! `target/sharded_engine_cycles.csv` (per-cycle telemetry of the widest
//! sharded run).

use aggregate_core::ProtocolConfig;
use gossip_analysis::bench::{self, BenchReport, BenchRun};
use gossip_analysis::Table;
use gossip_bench::{env_u64, env_usize, print_header};
use gossip_sim::sharded::cycle_telemetry_table;
use gossip_sim::{GossipSimulation, ShardedConfig, ShardedSimulation, SimulationConfig};
use std::time::Instant;

fn main() {
    let nodes = env_usize("GOSSIP_SHARD_NODES", 100_000);
    let cycles = env_usize("GOSSIP_SHARD_CYCLES", 20);
    let reps = env_usize("GOSSIP_SHARD_REPS", 3).max(1);
    let seed = env_u64("GOSSIP_BENCH_SEED", 20040102);

    print_header(
        "sharded_engine",
        "engine throughput (beyond the paper)",
        &format!(
            "Cycles/second of the sharded engine at 1/2/4/8 shards versus the \
             single-threaded reference engine on the same {nodes}-node averaging \
             workload, best of {reps} runs of {cycles} cycles each. Worker threads \
             default to the available cores; shard count only partitions the data, \
             so every row converges to the same node values. CSV artifacts: \
             target/sharded_engine*.csv."
        ),
    );

    let values: Vec<f64> = (0..nodes).map(|i| (i % 1_000) as f64).collect();
    let protocol = ProtocolConfig::builder()
        .cycles_per_epoch(cycles as u32 + 1)
        .build()
        .expect("valid protocol config");
    let base = SimulationConfig::averaging(protocol);

    // Every engine configuration is measured `reps` times with the
    // configurations interleaved per repetition, and the fastest run of each
    // is kept: this box shares its core, so consecutive measurements drift
    // by 2x and only interleaved best-of comparisons are meaningful.
    let shard_counts = [1usize, 2, 4, 8];
    let mut reference_elapsed = f64::INFINITY;
    let mut reference_variance = 0.0;
    let mut sharded_elapsed = [f64::INFINITY; 4];
    let mut sharded_exchanges = [0usize; 4];
    let mut sharded_variance = [0.0f64; 4];
    let mut sharded_workers = [1usize; 4];
    let mut rep_ratios: [Vec<f64>; 4] = Default::default();
    let mut widest_run = None;
    for _ in 0..reps {
        let mut reference =
            GossipSimulation::try_new(base, &values, seed).expect("valid reference config");
        let started = Instant::now();
        let summaries = reference.run(cycles);
        let rep_reference_elapsed = started.elapsed().as_secs_f64();
        reference_elapsed = reference_elapsed.min(rep_reference_elapsed);
        reference_variance = summaries.last().expect("cycles >= 1").estimate_variance;

        for (i, &shards) in shard_counts.iter().enumerate() {
            let config = ShardedConfig {
                base,
                shards,
                workers: None,
            };
            let mut sim =
                ShardedSimulation::new(config, &values, seed).expect("valid sharded config");
            sharded_workers[i] = sim.effective_workers();
            let started = Instant::now();
            let summaries = sim.run(cycles);
            let elapsed = started.elapsed().as_secs_f64();
            sharded_elapsed[i] = sharded_elapsed[i].min(elapsed);
            sharded_exchanges[i] = summaries.iter().map(|s| s.exchanges).sum();
            rep_ratios[i].push(rep_reference_elapsed / elapsed);
            sharded_variance[i] = summaries.last().expect("cycles >= 1").estimate_variance;
            if shards == *shard_counts.last().expect("non-empty") {
                widest_run = Some((sim.sampler_config(), summaries));
            }
        }
    }
    // Per-repetition speedups (reference and sharded measured back-to-back
    // under the same machine weather), summarised by their median.
    let median_ratio = |ratios: &[f64]| -> f64 {
        let mut sorted = ratios.to_vec();
        sorted.sort_by(f64::total_cmp);
        sorted[sorted.len() / 2]
    };
    let reference_rate = cycles as f64 / reference_elapsed;

    let mut table = Table::new(vec![
        "engine",
        "shards",
        "workers",
        "cycles/s",
        "elapsed (s)",
        "speedup vs reference",
        "final variance",
    ]);
    table.add_row(vec![
        "reference".into(),
        "-".into(),
        "1".into(),
        format!("{reference_rate:.1}"),
        format!("{reference_elapsed:.2}"),
        "1.00x".into(),
        format!("{reference_variance:.3e}"),
    ]);

    for (i, &shards) in shard_counts.iter().enumerate() {
        let (elapsed, variance, workers) =
            (sharded_elapsed[i], sharded_variance[i], sharded_workers[i]);
        let rate = cycles as f64 / elapsed;
        // Same workload, same convergence *rate*: the engines draw different
        // (equally distributed) schedules, so the trajectories agree
        // statistically — within a few percent after this many cycles —
        // while exact bit-equality only holds across shard counts of the
        // sharded engine itself (pinned in tests/determinism.rs).
        assert!(
            (variance - reference_variance).abs() <= 0.1 * (1.0 + reference_variance),
            "sharded final variance {variance} diverged from reference {reference_variance}"
        );
        table.add_row(vec![
            "sharded".into(),
            shards.to_string(),
            workers.to_string(),
            format!("{rate:.1}"),
            format!("{elapsed:.2}"),
            format!("{:.2}x", median_ratio(&rep_ratios[i])),
            format!("{variance:.3e}"),
        ]);
    }

    println!("{}", table.to_aligned_text());

    // Machine-readable record of the sweep (schema in EXPERIMENTS.md,
    // "Benchmark artifact schema"): merged into the same artifact the
    // million_node example maintains, under `bench_shards_*` labels.
    let mut bench_report = BenchReport::new("sharded_engine", &bench::git_revision());
    for (i, &shards) in shard_counts.iter().enumerate() {
        bench_report.push(BenchRun {
            label: format!("bench_shards_{shards}"),
            nodes,
            shards,
            workers: sharded_workers[i],
            cycles,
            elapsed_s: sharded_elapsed[i],
            cycles_per_s: cycles as f64 / sharded_elapsed[i],
            exchanges_per_s: sharded_exchanges[i] as f64 / sharded_elapsed[i],
        });
    }
    bench_report.peak_rss_bytes = bench::peak_rss_bytes();
    let bench_out =
        std::env::var("GOSSIP_BENCH_OUT").unwrap_or_else(|_| "BENCH_sharded_engine.json".into());
    if let Err(e) = bench_report.merge_into_file(&bench_out) {
        eprintln!("could not write {bench_out}: {e}");
    } else {
        println!("benchmark report merged into {bench_out}");
    }

    std::fs::create_dir_all("target").ok();
    if let Err(e) = table.write_csv("target/sharded_engine.csv") {
        eprintln!("could not write target/sharded_engine.csv: {e}");
    }
    if let Some((sampler, summaries)) = widest_run {
        if let Err(e) =
            cycle_telemetry_table(&summaries, sampler).write_csv("target/sharded_engine_cycles.csv")
        {
            eprintln!("could not write target/sharded_engine_cycles.csv: {e}");
        }
    }
    println!("CSV artifacts: target/sharded_engine.csv, target/sharded_engine_cycles.csv");
}
