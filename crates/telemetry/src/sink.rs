//! The recording facade the runtimes write through.

use crate::event::{merge_events, Event, EventKind};
use crate::recorder::FlightRecorder;
use crate::registry::{CounterId, MetricError, MetricsRegistry};
use crate::watchdog::{ConvergenceWatchdog, Diagnosis, WatchdogConfig, WatchdogVerdict};

/// Default flight-recorder ring capacity when tracing is enabled.
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

/// What a runtime records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryConfig {
    /// Record flight-recorder events (exchange lifecycle, churn, epochs).
    pub events: bool,
    /// Ring capacity per recorder when `events` is on.
    pub ring_capacity: usize,
    /// Run the convergence watchdog over the per-cycle variance.
    pub watchdog: Option<WatchdogConfig>,
}

impl TelemetryConfig {
    /// Everything off — the hot-path default, pinned bit-identical to the
    /// untraced goldens.
    pub fn disabled() -> Self {
        TelemetryConfig {
            events: false,
            ring_capacity: 0,
            watchdog: None,
        }
    }

    /// Full tracing with the default ring capacity and watchdog thresholds.
    pub fn full() -> Self {
        TelemetryConfig {
            events: true,
            ring_capacity: DEFAULT_RING_CAPACITY,
            watchdog: Some(WatchdogConfig::default()),
        }
    }

    /// Event tracing only (no watchdog).
    pub fn trace() -> Self {
        TelemetryConfig {
            events: true,
            ring_capacity: DEFAULT_RING_CAPACITY,
            watchdog: None,
        }
    }

    /// Whether anything is enabled at all.
    pub fn is_enabled(&self) -> bool {
        self.events || self.watchdog.is_some()
    }
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// The engine-side telemetry sink: one coordinator-owned recorder, a
/// metrics registry of core protocol counters, and the optional watchdog.
///
/// Protocol code only ever calls the *recording* methods (`begin_cycle`,
/// the `record_*` family, `observe_variance`); the *read* side
/// (`drain_events`, `watchdog_verdict`, `diagnoses`, `metrics`) is for
/// runners, tests and exporters after the fact. The gossip-lint
/// `observer-effect` rule enforces that split: telemetry reads inside
/// protocol crates are flagged, so measurements can never feed back into
/// protocol decisions.
///
/// Sharded engines keep additional per-shard [`FlightRecorder`]s for the
/// worker-side events and hand their drained batches to
/// [`drain_events_with`](TelemetrySink::drain_events_with).
#[derive(Debug)]
pub struct TelemetrySink {
    config: TelemetryConfig,
    recorder: FlightRecorder,
    watchdog: Option<ConvergenceWatchdog>,
    metrics: MetricsRegistry,
    exchanges: CounterId,
    messages_lost: CounterId,
    vetoes: CounterId,
    churn_events: CounterId,
    corruptions: CounterId,
    epochs: CounterId,
    /// Ordinal for cycle-start / cycle-end band events within the cycle.
    aux_seq: u64,
    /// Ordinal for veto-band events within the cycle (vetoed picks never
    /// get an exchange sequence number).
    veto_seq: u64,
}

impl TelemetrySink {
    /// Builds a sink for `config`; disabled configs cost one allocation-free
    /// struct and every recording call short-circuits.
    pub fn new(config: TelemetryConfig) -> Self {
        let mut metrics = MetricsRegistry::new();
        let fallback = CounterId::default();
        let exchanges = metrics.counter("exchanges").unwrap_or(fallback);
        let messages_lost = metrics.counter("messages_lost").unwrap_or(fallback);
        let vetoes = metrics.counter("exchanges_vetoed").unwrap_or(fallback);
        let churn_events = metrics.counter("churn_events").unwrap_or(fallback);
        let corruptions = metrics.counter("values_corrupted").unwrap_or(fallback);
        let epochs = metrics.counter("epochs_completed").unwrap_or(fallback);
        TelemetrySink {
            recorder: FlightRecorder::new(if config.events {
                config.ring_capacity
            } else {
                0
            }),
            watchdog: config.watchdog.map(ConvergenceWatchdog::new),
            metrics,
            exchanges,
            messages_lost,
            vetoes,
            churn_events,
            corruptions,
            epochs,
            aux_seq: 0,
            veto_seq: 0,
            config,
        }
    }

    /// The configuration this sink was built with.
    pub fn config(&self) -> &TelemetryConfig {
        &self.config
    }

    /// Whether event recording is on (engines gate their hooks on this).
    pub fn events_enabled(&self) -> bool {
        self.config.events
    }

    /// Makes a fresh per-shard recorder matching this sink's capacity.
    pub fn shard_recorder(&self) -> FlightRecorder {
        FlightRecorder::new(if self.config.events {
            self.config.ring_capacity
        } else {
            0
        })
    }

    /// Starts a new cycle: stamps the recorder context and resets the
    /// per-cycle ordinal counters.
    pub fn begin_cycle(&mut self, cycle: u64, time_ms: u64) {
        self.aux_seq = 0;
        self.veto_seq = 0;
        self.recorder.set_context(cycle, time_ms);
    }

    fn record_aux(&mut self, kind: EventKind) {
        let seq = self.aux_seq;
        self.aux_seq += 1;
        self.recorder.record(seq, kind);
    }

    /// Records a node join (cycle-start band).
    pub fn node_joined(&mut self, node: u64) {
        self.metrics.incr(self.churn_events);
        self.record_aux(EventKind::NodeJoined { node });
    }

    /// Records a node departure or crash (cycle-start band).
    pub fn node_departed(&mut self, node: u64) {
        self.metrics.incr(self.churn_events);
        self.record_aux(EventKind::NodeDeparted { node });
    }

    /// Records a fault-lab / adversary state overwrite (cycle-start band).
    pub fn value_corrupted(&mut self, node: u64) {
        self.metrics.incr(self.corruptions);
        self.record_aux(EventKind::ValueCorrupted { node });
    }

    /// Records a dead-link veto of a scheduled exchange (veto band).
    pub fn exchange_vetoed(&mut self, initiator: u64, peer: u64) {
        self.metrics.incr(self.vetoes);
        let seq = self.veto_seq;
        self.veto_seq += 1;
        self.recorder
            .record(seq, EventKind::ExchangeVetoed { initiator, peer });
    }

    /// Records the start of exchange `seq` (exchange band).
    pub fn exchange_begun(&mut self, seq: u64, initiator: u64, peer: u64) {
        self.metrics.incr(self.exchanges);
        self.recorder
            .record(seq, EventKind::ExchangeBegun { initiator, peer });
    }

    /// Records one lost message of exchange `seq` (exchange band).
    pub fn message_lost(&mut self, seq: u64) {
        self.metrics.incr(self.messages_lost);
        self.recorder.record(seq, EventKind::MessageLost);
    }

    /// Bumps the message-loss counter by `count` without recording events.
    /// Sharded engines record per-exchange loss events into per-shard
    /// [`FlightRecorder`]s (worker-side, identity-free), so the metric is
    /// fed separately from the cycle's merged tally.
    pub fn add_message_losses(&mut self, count: u64) {
        self.metrics.add(self.messages_lost, count);
    }

    /// Records loss-free completion of exchange `seq` (exchange band).
    pub fn exchange_completed(&mut self, seq: u64) {
        self.recorder.record(seq, EventKind::ExchangeCompleted);
    }

    /// Records a live-runtime rejection of an overlapping exchange.
    pub fn exchange_rejected(&mut self, seq: u64, node: u64) {
        self.recorder
            .record(seq, EventKind::ExchangeRejected { node });
    }

    /// Records an epoch restart (cycle-end band).
    pub fn epoch_restarted(&mut self, epoch: u64) {
        self.metrics.incr(self.epochs);
        self.record_aux(EventKind::EpochRestarted { epoch });
    }

    /// Records a leader election (cycle-end band).
    pub fn leader_elected(&mut self, node: u64) {
        self.record_aux(EventKind::LeaderElected { node });
    }

    /// Feeds the end-of-cycle variance estimate to the watchdog, if one is
    /// configured.
    pub fn observe_variance(&mut self, cycle: u64, variance: f64) {
        if let Some(watchdog) = self.watchdog.as_mut() {
            watchdog.observe(cycle, variance);
        }
    }

    // --- read side (post-hoc; flagged in protocol crates by the
    // observer-effect lint rule) ---

    /// Drains this sink's own recorder into canonical trace order.
    pub fn drain_events(&mut self) -> Vec<Event> {
        merge_events([self.recorder.drain()])
    }

    /// Drains this sink's recorder plus externally recorded per-shard /
    /// per-node batches, merged into canonical trace order.
    pub fn drain_events_with(
        &mut self,
        batches: impl IntoIterator<Item = Vec<Event>>,
    ) -> Vec<Event> {
        let own = self.recorder.drain();
        merge_events(std::iter::once(own).chain(batches))
    }

    /// Events evicted from this sink's own ring (overflow indicator).
    pub fn dropped_events(&self) -> u64 {
        self.recorder.dropped()
    }

    /// The watchdog's current verdict, if a watchdog is configured.
    pub fn watchdog_verdict(&self) -> Option<WatchdogVerdict> {
        self.watchdog.as_ref().map(ConvergenceWatchdog::verdict)
    }

    /// Verdict transitions logged by the watchdog.
    pub fn diagnoses(&self) -> &[Diagnosis] {
        self.watchdog
            .as_ref()
            .map(ConvergenceWatchdog::diagnoses)
            .unwrap_or(&[])
    }

    /// The metrics registry (counters accumulated by the record calls).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Registry-related errors cannot occur for the built-in counters, but
    /// callers registering their own metrics go through this accessor.
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }
}

/// A typed registration error surface re-exported for sink users.
pub type SinkMetricError = MetricError;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let mut sink = TelemetrySink::new(TelemetryConfig::disabled());
        sink.begin_cycle(0, 0);
        sink.exchange_begun(0, 1, 2);
        sink.message_lost(0);
        sink.epoch_restarted(1);
        assert!(sink.drain_events().is_empty());
        assert_eq!(sink.watchdog_verdict(), None);
        // Counters still accumulate — they are cheap and useful even
        // without the event ring.
        assert_eq!(sink.metrics().counter_value("exchanges"), Ok(1));
    }

    #[test]
    fn events_come_out_in_canonical_order() {
        let mut sink = TelemetrySink::new(TelemetryConfig::trace());
        sink.begin_cycle(0, 0);
        sink.exchange_begun(1, 10, 20);
        sink.exchange_begun(0, 5, 6);
        sink.node_departed(3);
        sink.exchange_vetoed(7, 8);
        sink.epoch_restarted(0);
        let events = sink.drain_events();
        let names: Vec<_> = events.iter().map(|e| e.kind.name()).collect();
        assert_eq!(
            names,
            [
                "node_departed",
                "exchange_vetoed",
                "exchange_begun",
                "exchange_begun",
                "epoch_restarted"
            ]
        );
        // Within the exchange band, seq order wins over record order.
        assert_eq!(events[2].seq, 0);
        assert_eq!(events[3].seq, 1);
    }

    #[test]
    fn shard_batches_merge_with_coordinator_events() {
        let mut sink = TelemetrySink::new(TelemetryConfig::trace());
        sink.begin_cycle(2, 20);
        sink.exchange_begun(0, 1, 2);
        let mut shard = sink.shard_recorder();
        shard.set_context(2, 20);
        shard.record(0, EventKind::MessageLost);
        let events = sink.drain_events_with([shard.drain()]);
        let names: Vec<_> = events.iter().map(|e| e.kind.name()).collect();
        assert_eq!(names, ["exchange_begun", "message_lost"]);
    }

    #[test]
    fn watchdog_is_fed_through_the_sink() {
        let mut sink = TelemetrySink::new(TelemetryConfig::full());
        let mut var = 1.0;
        for cycle in 0..10 {
            sink.observe_variance(cycle, var);
            var *= 0.3;
        }
        match sink.watchdog_verdict() {
            Some(WatchdogVerdict::Converging { .. }) => {}
            other => panic!("expected converging, got {other:?}"),
        }
    }
}
