//! # gossip-telemetry
//!
//! A deterministic observability layer for the gossip runtimes: a
//! [`FlightRecorder`] ring of structured [`Event`]s, a [`MetricsRegistry`]
//! of named counters/gauges/histograms, and a [`ConvergenceWatchdog`] that
//! diagnoses stalls and divergence from the per-cycle variance trajectory.
//!
//! All four runtimes (`GossipSimulation`, `ShardedSimulation`,
//! `VirtualCluster`, the live `GossipRuntime`) record through one
//! [`TelemetrySink`] facade and emit one event schema, so a trace from any
//! engine can be exported as JSONL ([`trace::to_jsonl`]) and read with the
//! same `trace summarize` tool. Two invariants make the traces useful for
//! determinism auditing:
//!
//! 1. **Recording never perturbs the protocol.** The sink consumes no
//!    randomness and protocol crates only call its write-only recording
//!    methods; the read side is lint-enforced (`observer-effect`) to stay
//!    out of protocol code, so measurements cannot feed back into
//!    decisions.
//! 2. **Merged traces are bit-identical across executors.** Events carry a
//!    total-order key ([`Event::sort_key`]) built from shard-count-agnostic
//!    identifiers (global directory positions, global exchange sequence
//!    numbers), so draining per-shard rings and sorting yields the same
//!    byte stream at any shard or worker count.
//!
//! Timestamps come from the runtime's injected clock (virtual time in the
//! simulators, the `NodeEnv` clock in the live runtime) — never from a
//! wall clock inside protocol crates.
//!
//! ```
//! use gossip_telemetry::{TelemetryConfig, TelemetrySink, trace};
//!
//! let mut sink = TelemetrySink::new(TelemetryConfig::trace());
//! sink.begin_cycle(0, 0);
//! sink.exchange_begun(0, 12, 209);
//! sink.message_lost(0);
//! let events = sink.drain_events();
//! let jsonl = trace::to_jsonl(&events);
//! assert!(jsonl.starts_with("{\"cycle\":0,"));
//! assert_eq!(trace::from_jsonl(&jsonl).ok().as_deref(), Some(&events[..]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod event;
pub mod recorder;
pub mod registry;
pub mod sink;
pub mod trace;
pub mod watchdog;

pub use event::{merge_events, Event, EventKind, NO_NODE};
pub use recorder::FlightRecorder;
pub use registry::{CounterId, GaugeId, HistogramId, MetricError, MetricsRegistry};
pub use sink::{TelemetryConfig, TelemetrySink, DEFAULT_RING_CAPACITY};
pub use watchdog::{ConvergenceWatchdog, Diagnosis, WatchdogConfig, WatchdogVerdict};
