//! The structured event schema shared by all four runtimes.
//!
//! One [`Event`] is a compact record of one protocol-visible occurrence —
//! an exchange beginning or completing, a message lost, a node joining,
//! an epoch restarting — stamped with the cycle it happened in, the
//! injected-clock time and a sequence key. Every runtime
//! (`GossipSimulation`, `ShardedSimulation`, `VirtualCluster`, the live
//! `GossipRuntime`) emits this one schema, so traces from different
//! engines can be read, merged and summarized by the same tools.
//!
//! ## Merge order
//!
//! Recording is distributed (per shard, per node), so a canonical trace is
//! restored by sorting on [`Event::sort_key`]: `(cycle, phase, seq, rank,
//! payload)`. The *phase* groups events within a cycle into cycle-start
//! (churn, corruption), veto, exchange and cycle-end (epoch restarts,
//! elections) bands; within the exchange band the global exchange sequence
//! number `seq` — identical across shard and worker counts by the sharded
//! engine's schedule construction — provides the total order, and the rank
//! orders begun < lost < completed within one exchange. The result: the
//! merged trace of a seeded run is byte-identical across repeats, worker
//! counts and shard counts.

/// Sentinel for "no node attached to this event".
pub const NO_NODE: u64 = u64::MAX;

/// What happened. Node fields carry whatever identifier the recording
/// runtime uses consistently: global directory positions in the sharded
/// engine (shard-count invariant), arena slots in the reference engine and
/// `VirtualCluster`, raw `NodeId`s in the live runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A node joined the network.
    NodeJoined {
        /// Identifier of the joining node.
        node: u64,
    },
    /// A node departed or crashed.
    NodeDeparted {
        /// Identifier of the departing node.
        node: u64,
    },
    /// The fault lab or an adversary overwrote a node's state.
    ValueCorrupted {
        /// Identifier of the corrupted node.
        node: u64,
    },
    /// A scheduled exchange was vetoed by a dead link before it started.
    ExchangeVetoed {
        /// Identifier of the initiating node.
        initiator: u64,
        /// Identifier of the unreachable peer.
        peer: u64,
    },
    /// An exchange survived the veto pass and was scheduled; `seq` is its
    /// global sequence number.
    ExchangeBegun {
        /// Identifier of the initiating node.
        initiator: u64,
        /// Identifier of the contacted peer.
        peer: u64,
    },
    /// The loss model dropped one message of exchange `seq`.
    MessageLost,
    /// Every message of exchange `seq` survived and the initiator absorbed
    /// the replies. (In the live runtime: the initiator received a reply
    /// before its timeout.)
    MessageDelivered,
    /// Exchange `seq` completed loss-free end to end.
    ExchangeCompleted,
    /// The live runtime rejected an overlapping incoming exchange.
    ExchangeRejected {
        /// Identifier of the rejecting node.
        node: u64,
    },
    /// An epoch completed and the protocol restarted into the next one.
    EpochRestarted {
        /// The epoch that just completed.
        epoch: u64,
    },
    /// A node elected itself (or was promoted) leader of a counting
    /// instance at an epoch boundary.
    LeaderElected {
        /// Identifier of the elected leader.
        node: u64,
    },
}

impl EventKind {
    /// The within-cycle band this kind sorts into (see the module docs).
    pub fn phase(&self) -> u8 {
        match self {
            EventKind::NodeJoined { .. }
            | EventKind::NodeDeparted { .. }
            | EventKind::ValueCorrupted { .. } => 0,
            EventKind::ExchangeVetoed { .. } => 1,
            EventKind::ExchangeBegun { .. }
            | EventKind::MessageLost
            | EventKind::MessageDelivered
            | EventKind::ExchangeCompleted
            | EventKind::ExchangeRejected { .. } => 2,
            EventKind::EpochRestarted { .. } | EventKind::LeaderElected { .. } => 3,
        }
    }

    /// Order of kinds sharing one `(cycle, phase, seq)` key.
    pub fn rank(&self) -> u8 {
        match self {
            EventKind::NodeDeparted { .. } => 0,
            EventKind::NodeJoined { .. } => 1,
            EventKind::ValueCorrupted { .. } => 2,
            EventKind::ExchangeVetoed { .. } => 0,
            EventKind::ExchangeBegun { .. } => 0,
            EventKind::MessageLost => 1,
            EventKind::MessageDelivered => 2,
            EventKind::ExchangeCompleted => 3,
            EventKind::ExchangeRejected { .. } => 4,
            EventKind::EpochRestarted { .. } => 0,
            EventKind::LeaderElected { .. } => 1,
        }
    }

    /// The wire name used in the JSONL export.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::NodeJoined { .. } => "node_joined",
            EventKind::NodeDeparted { .. } => "node_departed",
            EventKind::ValueCorrupted { .. } => "value_corrupted",
            EventKind::ExchangeVetoed { .. } => "exchange_vetoed",
            EventKind::ExchangeBegun { .. } => "exchange_begun",
            EventKind::MessageLost => "message_lost",
            EventKind::MessageDelivered => "message_delivered",
            EventKind::ExchangeCompleted => "exchange_completed",
            EventKind::ExchangeRejected { .. } => "exchange_rejected",
            EventKind::EpochRestarted { .. } => "epoch_restarted",
            EventKind::LeaderElected { .. } => "leader_elected",
        }
    }

    /// The payload pair used as the sort-key tiebreaker.
    fn payload(&self) -> (u64, u64) {
        match *self {
            EventKind::NodeJoined { node }
            | EventKind::NodeDeparted { node }
            | EventKind::ValueCorrupted { node }
            | EventKind::ExchangeRejected { node }
            | EventKind::LeaderElected { node } => (node, NO_NODE),
            EventKind::ExchangeVetoed { initiator, peer }
            | EventKind::ExchangeBegun { initiator, peer } => (initiator, peer),
            EventKind::EpochRestarted { epoch } => (epoch, NO_NODE),
            EventKind::MessageLost | EventKind::MessageDelivered | EventKind::ExchangeCompleted => {
                (NO_NODE, NO_NODE)
            }
        }
    }
}

/// One flight-recorder record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The protocol cycle the event happened in.
    pub cycle: u64,
    /// Injected-clock timestamp in milliseconds (virtual time in the
    /// simulators and `VirtualCluster`, wall time in the live runtime —
    /// never read from a wall clock inside protocol crates).
    pub time_ms: u64,
    /// Sequence key within the cycle: the global exchange sequence number
    /// for exchange-band events, a recorder-assigned ordinal otherwise.
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// The canonical total-order key (see the module docs on merge order).
    pub fn sort_key(&self) -> (u64, u8, u64, u8, u64, u64) {
        let (a, b) = self.kind.payload();
        (
            self.cycle,
            self.kind.phase(),
            self.seq,
            self.kind.rank(),
            a,
            b,
        )
    }
}

/// Merges per-shard / per-node event batches into the canonical trace
/// order by sorting on [`Event::sort_key`]. The result is independent of
/// how the events were distributed across recorders, which is what makes
/// merged traces bit-identical across shard and worker counts.
pub fn merge_events(batches: impl IntoIterator<Item = Vec<Event>>) -> Vec<Event> {
    let mut merged: Vec<Event> = batches.into_iter().flatten().collect();
    merged.sort_unstable_by_key(Event::sort_key);
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, seq: u64, kind: EventKind) -> Event {
        Event {
            cycle,
            time_ms: cycle * 10,
            seq,
            kind,
        }
    }

    #[test]
    fn phases_band_the_cycle() {
        assert!(
            EventKind::NodeDeparted { node: 1 }.phase()
                < EventKind::ExchangeVetoed {
                    initiator: 0,
                    peer: 1
                }
                .phase()
        );
        assert!(
            EventKind::ExchangeVetoed {
                initiator: 0,
                peer: 1
            }
            .phase()
                < EventKind::ExchangeBegun {
                    initiator: 0,
                    peer: 1
                }
                .phase()
        );
        assert!(
            EventKind::ExchangeCompleted.phase() < EventKind::EpochRestarted { epoch: 0 }.phase()
        );
    }

    #[test]
    fn merge_is_distribution_independent() {
        let a = vec![
            ev(
                0,
                0,
                EventKind::ExchangeBegun {
                    initiator: 3,
                    peer: 9,
                },
            ),
            ev(0, 0, EventKind::ExchangeCompleted),
            ev(
                1,
                1,
                EventKind::ExchangeBegun {
                    initiator: 4,
                    peer: 2,
                },
            ),
        ];
        let b = vec![
            ev(0, 1, EventKind::MessageLost),
            ev(
                0,
                1,
                EventKind::ExchangeBegun {
                    initiator: 7,
                    peer: 1,
                },
            ),
            ev(0, 0, EventKind::NodeDeparted { node: 5 }),
        ];
        let one_way = merge_events([a.clone(), b.clone()]);
        let other_way = merge_events([b, a]);
        assert_eq!(one_way, other_way);
        // Cycle-start band sorts first; within the exchange band, seq then
        // rank (begun before lost before completed).
        assert_eq!(one_way[0].kind, EventKind::NodeDeparted { node: 5 });
        assert_eq!(
            one_way[1].kind,
            EventKind::ExchangeBegun {
                initiator: 3,
                peer: 9
            }
        );
        assert_eq!(one_way[2].kind, EventKind::ExchangeCompleted);
        assert_eq!(
            one_way[3].kind,
            EventKind::ExchangeBegun {
                initiator: 7,
                peer: 1
            }
        );
        assert_eq!(one_way[4].kind, EventKind::MessageLost);
    }
}
