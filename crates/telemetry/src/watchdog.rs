//! Online convergence diagnosis from the per-cycle variance trajectory.

use std::collections::VecDeque;
use std::fmt;

use gossip_analysis::OnlineStats;

/// Tuning knobs for the [`ConvergenceWatchdog`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchdogConfig {
    /// Sliding-window length (in cycles) over which the per-cycle
    /// variance-reduction factor is averaged geometrically.
    pub window: usize,
    /// Factors above this (but at most 1) diagnose a stall: the protocol
    /// is running yet variance is no longer contracting. The paper's
    /// push–pull averaging contracts by ≈ 1/(2√e) ≈ 0.303 per cycle on a
    /// complete overlay, so 0.9 leaves a wide safety margin.
    pub stall_low: f64,
    /// Factors above this diagnose divergence (variance is growing —
    /// churn, corruption or an adversary is outrunning the averaging).
    pub divergence: f64,
    /// Variances at or below this floor count as converged; near machine
    /// precision the factor hovers around 1 and would otherwise be
    /// mis-diagnosed as a stall.
    pub floor: f64,
    /// Minimum observed cycles before any verdict other than
    /// [`WatchdogVerdict::Insufficient`].
    pub min_cycles: usize,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            window: 8,
            stall_low: 0.9,
            divergence: 1.05,
            floor: 1e-24,
            min_cycles: 4,
        }
    }
}

/// The watchdog's current diagnosis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WatchdogVerdict {
    /// Fewer than `min_cycles` variance observations so far.
    Insufficient,
    /// Variance reached the configured floor — the run is done.
    Converged {
        /// The variance that crossed the floor.
        variance: f64,
    },
    /// Variance is contracting at a healthy per-cycle factor.
    Converging {
        /// Windowed geometric-mean variance-reduction factor.
        factor: f64,
    },
    /// Variance stopped contracting (factor in `(stall_low, divergence]`).
    Stalled {
        /// Windowed geometric-mean variance-reduction factor.
        factor: f64,
        /// Cycle at which the stall was diagnosed.
        cycle: u64,
    },
    /// Variance is growing (factor above `divergence`).
    Diverging {
        /// Windowed geometric-mean variance-reduction factor.
        factor: f64,
        /// Cycle at which divergence was diagnosed.
        cycle: u64,
    },
}

impl WatchdogVerdict {
    /// Stable lowercase tag for logs and CI assertions.
    pub fn tag(&self) -> &'static str {
        match self {
            WatchdogVerdict::Insufficient => "insufficient",
            WatchdogVerdict::Converged { .. } => "converged",
            WatchdogVerdict::Converging { .. } => "converging",
            WatchdogVerdict::Stalled { .. } => "stalled",
            WatchdogVerdict::Diverging { .. } => "diverging",
        }
    }
}

impl fmt::Display for WatchdogVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WatchdogVerdict::Insufficient => write!(f, "insufficient data"),
            WatchdogVerdict::Converged { variance } => {
                write!(f, "converged (variance {variance:.3e})")
            }
            WatchdogVerdict::Converging { factor } => {
                write!(f, "converging (factor {factor:.3})")
            }
            WatchdogVerdict::Stalled { factor, cycle } => {
                write!(f, "stalled at cycle {cycle} (factor {factor:.3})")
            }
            WatchdogVerdict::Diverging { factor, cycle } => {
                write!(f, "diverging at cycle {cycle} (factor {factor:.3})")
            }
        }
    }
}

/// A verdict transition, logged when the diagnosis changes kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Diagnosis {
    /// Cycle at which the verdict changed.
    pub cycle: u64,
    /// The new verdict.
    pub verdict: WatchdogVerdict,
}

/// Watches the per-cycle variance trajectory and diagnoses stalls and
/// divergence online.
///
/// Feed it one variance sample per cycle via
/// [`observe`](ConvergenceWatchdog::observe). It maintains the per-cycle
/// variance-reduction factor `var_t / var_{t-1}` over a sliding window,
/// averaged geometrically (the factor is multiplicative), plus all-time
/// [`OnlineStats`] of the factors for end-of-run summaries. Whenever the
/// verdict changes kind the transition is appended to
/// [`diagnoses`](ConvergenceWatchdog::diagnoses), which is what the CI
/// smoke test asserts on.
#[derive(Debug)]
pub struct ConvergenceWatchdog {
    config: WatchdogConfig,
    window: VecDeque<f64>,
    log_sum: f64,
    prev_variance: Option<f64>,
    cycles: usize,
    cycle: u64,
    factor_stats: OnlineStats,
    verdict: WatchdogVerdict,
    diagnoses: Vec<Diagnosis>,
}

impl ConvergenceWatchdog {
    /// Creates a watchdog with the given thresholds.
    pub fn new(config: WatchdogConfig) -> Self {
        ConvergenceWatchdog {
            config,
            window: VecDeque::new(),
            log_sum: 0.0,
            prev_variance: None,
            cycles: 0,
            cycle: 0,
            factor_stats: OnlineStats::new(),
            verdict: WatchdogVerdict::Insufficient,
            diagnoses: Vec::new(),
        }
    }

    /// Feeds the end-of-cycle variance for `cycle` and returns the updated
    /// verdict.
    pub fn observe(&mut self, cycle: u64, variance: f64) -> WatchdogVerdict {
        self.cycle = cycle;
        self.cycles += 1;
        if let Some(prev) = self.prev_variance {
            // Guard the ratio: a zero/denormal previous variance would blow
            // the factor up even though the run has simply finished.
            if prev > self.config.floor {
                let factor = variance / prev;
                self.factor_stats.push(factor);
                self.push_factor(factor);
            }
        }
        self.prev_variance = Some(variance);
        let next = self.classify(variance);
        if std::mem::discriminant(&next) != std::mem::discriminant(&self.verdict) {
            self.diagnoses.push(Diagnosis {
                cycle,
                verdict: next,
            });
        }
        self.verdict = next;
        next
    }

    fn push_factor(&mut self, factor: f64) {
        // ln(max(factor, tiny)) keeps a literal-zero variance drop finite.
        let clamped = factor.max(1e-300);
        self.window.push_back(clamped);
        self.log_sum += clamped.ln();
        if self.window.len() > self.config.window {
            if let Some(old) = self.window.pop_front() {
                self.log_sum -= old.ln();
            }
        }
    }

    fn classify(&self, variance: f64) -> WatchdogVerdict {
        if variance <= self.config.floor {
            return WatchdogVerdict::Converged { variance };
        }
        if self.cycles < self.config.min_cycles || self.window.is_empty() {
            return WatchdogVerdict::Insufficient;
        }
        let factor = (self.log_sum / self.window.len() as f64).exp();
        if factor > self.config.divergence {
            WatchdogVerdict::Diverging {
                factor,
                cycle: self.cycle,
            }
        } else if factor > self.config.stall_low {
            WatchdogVerdict::Stalled {
                factor,
                cycle: self.cycle,
            }
        } else {
            WatchdogVerdict::Converging { factor }
        }
    }

    /// The current verdict.
    pub fn verdict(&self) -> WatchdogVerdict {
        self.verdict
    }

    /// All verdict-kind transitions observed so far, in cycle order.
    pub fn diagnoses(&self) -> &[Diagnosis] {
        &self.diagnoses
    }

    /// All-time statistics of the per-cycle variance-reduction factor.
    pub fn factor_stats(&self) -> &OnlineStats {
        &self.factor_stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn watchdog() -> ConvergenceWatchdog {
        ConvergenceWatchdog::new(WatchdogConfig::default())
    }

    #[test]
    fn healthy_decay_is_converging() {
        let mut w = watchdog();
        let mut var = 1.0;
        let mut verdict = WatchdogVerdict::Insufficient;
        for cycle in 0..12 {
            verdict = w.observe(cycle, var);
            var *= 0.303;
        }
        match verdict {
            WatchdogVerdict::Converging { factor } => {
                assert!((factor - 0.303).abs() < 1e-9, "factor {factor}");
            }
            other => panic!("expected converging, got {other:?}"),
        }
    }

    #[test]
    fn plateau_is_diagnosed_as_stall_once() {
        let mut w = watchdog();
        let mut var = 1.0;
        for cycle in 0..6 {
            w.observe(cycle, var);
            var *= 0.303;
        }
        // Plateau: the factor climbs toward 1 as the window fills with 1.0s.
        for cycle in 6..20 {
            w.observe(cycle, var);
        }
        assert_eq!(w.verdict().tag(), "stalled");
        let stalls: Vec<_> = w
            .diagnoses()
            .iter()
            .filter(|d| d.verdict.tag() == "stalled")
            .collect();
        assert_eq!(
            stalls.len(),
            1,
            "transitions logged once: {:?}",
            w.diagnoses()
        );
    }

    #[test]
    fn growth_is_diagnosed_as_divergence() {
        let mut w = watchdog();
        let mut var = 1.0;
        for cycle in 0..12 {
            w.observe(cycle, var);
            var *= 1.2;
        }
        assert_eq!(w.verdict().tag(), "diverging");
    }

    #[test]
    fn floor_wins_over_stall_at_machine_precision() {
        let mut w = watchdog();
        for cycle in 0..10 {
            w.observe(cycle, 1e-30);
        }
        match w.verdict() {
            WatchdogVerdict::Converged { variance } => assert_eq!(variance, 1e-30),
            other => panic!("expected converged, got {other:?}"),
        }
    }

    #[test]
    fn too_few_cycles_is_insufficient() {
        let mut w = watchdog();
        assert_eq!(w.observe(0, 1.0).tag(), "insufficient");
        assert_eq!(w.observe(1, 0.3).tag(), "insufficient");
    }
}
