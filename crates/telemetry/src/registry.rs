//! A static registry of named counters, gauges and histograms.

use std::fmt;

use gossip_analysis::Histogram;

/// Typed failure from [`MetricsRegistry`] registration or lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricError {
    /// A metric with this name is already registered (names are unique
    /// across all three metric kinds).
    Duplicate(&'static str),
    /// No metric with this name is registered.
    Unknown(&'static str),
    /// A metric with this name exists but is of a different kind.
    KindMismatch(&'static str),
    /// Histogram bounds were invalid (`lo >= hi` or zero bins).
    InvalidHistogram(&'static str),
}

impl fmt::Display for MetricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricError::Duplicate(name) => write!(f, "metric `{name}` is already registered"),
            MetricError::Unknown(name) => write!(f, "metric `{name}` is not registered"),
            MetricError::KindMismatch(name) => {
                write!(f, "metric `{name}` is registered with a different kind")
            }
            MetricError::InvalidHistogram(name) => {
                write!(f, "histogram `{name}` has invalid bounds or bin count")
            }
        }
    }
}

impl std::error::Error for MetricError {}

/// Handle to a registered counter.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// A registry of metrics keyed by `&'static str` names.
///
/// Registration hands back a typed id; updates go through the id, so the
/// hot path is a bounds-checked vector index with no hashing. Names are
/// unique across kinds, and all lookups return typed [`MetricError`]s
/// instead of panicking.
///
/// Histograms reuse [`gossip_analysis::Histogram`] so their bucket
/// semantics (uniform bins, underflow/overflow tracking, text rendering)
/// match the analysis tables already used by the experiment runners.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Vec<(&'static str, u64)>,
    gauges: Vec<(&'static str, f64)>,
    histograms: Vec<(&'static str, Histogram)>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn name_taken(&self, name: &'static str) -> bool {
        self.counters.iter().any(|(n, _)| *n == name)
            || self.gauges.iter().any(|(n, _)| *n == name)
            || self.histograms.iter().any(|(n, _)| *n == name)
    }

    /// Registers a counter, initially 0.
    pub fn counter(&mut self, name: &'static str) -> Result<CounterId, MetricError> {
        if self.name_taken(name) {
            return Err(MetricError::Duplicate(name));
        }
        self.counters.push((name, 0));
        Ok(CounterId(self.counters.len() - 1))
    }

    /// Registers a gauge, initially 0.0.
    pub fn gauge(&mut self, name: &'static str) -> Result<GaugeId, MetricError> {
        if self.name_taken(name) {
            return Err(MetricError::Duplicate(name));
        }
        self.gauges.push((name, 0.0));
        Ok(GaugeId(self.gauges.len() - 1))
    }

    /// Registers a histogram over `[lo, hi)` with `bins` uniform buckets.
    pub fn histogram(
        &mut self,
        name: &'static str,
        lo: f64,
        hi: f64,
        bins: usize,
    ) -> Result<HistogramId, MetricError> {
        if self.name_taken(name) {
            return Err(MetricError::Duplicate(name));
        }
        let histogram = Histogram::new(lo, hi, bins).ok_or(MetricError::InvalidHistogram(name))?;
        self.histograms.push((name, histogram));
        Ok(HistogramId(self.histograms.len() - 1))
    }

    /// Adds `delta` to a counter.
    pub fn add(&mut self, id: CounterId, delta: u64) {
        if let Some((_, value)) = self.counters.get_mut(id.0) {
            *value += delta;
        }
    }

    /// Increments a counter by one.
    pub fn incr(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Sets a gauge to `value`.
    pub fn set(&mut self, id: GaugeId, value: f64) {
        if let Some((_, gauge)) = self.gauges.get_mut(id.0) {
            *gauge = value;
        }
    }

    /// Records one sample into a histogram.
    pub fn observe(&mut self, id: HistogramId, sample: f64) {
        if let Some((_, histogram)) = self.histograms.get_mut(id.0) {
            histogram.add(sample);
        }
    }

    /// Reads a counter by name.
    pub fn counter_value(&self, name: &'static str) -> Result<u64, MetricError> {
        match self.counters.iter().find(|(n, _)| *n == name) {
            Some((_, value)) => Ok(*value),
            None if self.name_taken(name) => Err(MetricError::KindMismatch(name)),
            None => Err(MetricError::Unknown(name)),
        }
    }

    /// Reads a gauge by name.
    pub fn gauge_value(&self, name: &'static str) -> Result<f64, MetricError> {
        match self.gauges.iter().find(|(n, _)| *n == name) {
            Some((_, value)) => Ok(*value),
            None if self.name_taken(name) => Err(MetricError::KindMismatch(name)),
            None => Err(MetricError::Unknown(name)),
        }
    }

    /// Reads a histogram by name.
    pub fn histogram_value(&self, name: &'static str) -> Result<&Histogram, MetricError> {
        match self.histograms.iter().find(|(n, _)| *n == name) {
            Some((_, histogram)) => Ok(histogram),
            None if self.name_taken(name) => Err(MetricError::KindMismatch(name)),
            None => Err(MetricError::Unknown(name)),
        }
    }

    /// Renders every metric, sorted by name, one per line — counters as
    /// `name = value`, gauges as `name = value` with the shortest exact
    /// float form, histograms as their multi-line text rendering.
    pub fn render(&self) -> String {
        let mut lines: Vec<(&'static str, String)> = Vec::new();
        for (name, value) in &self.counters {
            lines.push((name, format!("{name} = {value}")));
        }
        for (name, value) in &self.gauges {
            lines.push((name, format!("{name} = {value}")));
        }
        for (name, histogram) in &self.histograms {
            lines.push((name, format!("{name}:\n{}", histogram.to_text())));
        }
        lines.sort_by_key(|(name, _)| *name);
        let mut out = String::new();
        for (_, line) in lines {
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_names_are_rejected_across_kinds() {
        let mut reg = MetricsRegistry::new();
        reg.counter("exchanges").unwrap();
        assert_eq!(
            reg.gauge("exchanges"),
            Err(MetricError::Duplicate("exchanges"))
        );
        assert_eq!(
            reg.histogram("exchanges", 0.0, 1.0, 4),
            Err(MetricError::Duplicate("exchanges"))
        );
    }

    #[test]
    fn typed_lookups_distinguish_unknown_from_mismatch() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("messages_lost").unwrap();
        reg.add(c, 3);
        reg.incr(c);
        assert_eq!(reg.counter_value("messages_lost"), Ok(4));
        assert_eq!(
            reg.gauge_value("messages_lost"),
            Err(MetricError::KindMismatch("messages_lost"))
        );
        assert_eq!(reg.counter_value("nope"), Err(MetricError::Unknown("nope")));
    }

    #[test]
    fn invalid_histogram_bounds_are_typed() {
        let mut reg = MetricsRegistry::new();
        assert_eq!(
            reg.histogram("bad", 1.0, 1.0, 4),
            Err(MetricError::InvalidHistogram("bad"))
        );
        assert_eq!(
            reg.histogram("bad", 0.0, 1.0, 0),
            Err(MetricError::InvalidHistogram("bad"))
        );
    }

    #[test]
    fn render_is_sorted_by_name() {
        let mut reg = MetricsRegistry::new();
        let g = reg.gauge("variance").unwrap();
        let c = reg.counter("exchanges").unwrap();
        reg.set(g, 0.5);
        reg.incr(c);
        let text = reg.render();
        let exchanges = text.find("exchanges = 1").unwrap_or(usize::MAX);
        let variance = text.find("variance = 0.5").unwrap_or(usize::MAX);
        assert!(exchanges < variance, "render not sorted: {text}");
    }

    #[test]
    fn histogram_reuses_analysis_buckets() {
        let mut reg = MetricsRegistry::new();
        let h = reg.histogram("factor", 0.0, 1.0, 2).unwrap();
        reg.observe(h, 0.25);
        reg.observe(h, 0.75);
        reg.observe(h, 2.0);
        let hist = reg.histogram_value("factor").unwrap();
        assert_eq!(hist.count(), 3);
        assert_eq!(hist.bin_counts(), &[1, 1]);
        assert_eq!(hist.overflow(), 1);
    }
}
