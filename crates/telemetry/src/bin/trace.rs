//! `trace` — read a JSONL flight-recorder dump and print a human summary.
//!
//! ```text
//! trace summarize <path.jsonl>
//! ```

use std::process::ExitCode;

use gossip_telemetry::trace::{from_jsonl, summarize};

fn usage() -> ExitCode {
    eprintln!("usage: trace summarize <path.jsonl>");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, path) = match args.as_slice() {
        [command, path] => (command.as_str(), path.as_str()),
        _ => return usage(),
    };
    if command != "summarize" {
        return usage();
    }
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("trace: cannot read {path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    match from_jsonl(&text) {
        Ok(events) => {
            print!("{}", summarize(&events));
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("trace: {path}: {err}");
            ExitCode::FAILURE
        }
    }
}
