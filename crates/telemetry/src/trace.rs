//! JSONL trace export, parsing and human summary.
//!
//! Every line is one event as a flat JSON object with integer-only
//! fields, so the text form is deterministic byte for byte (no float
//! formatting in the schema):
//!
//! ```json
//! {"cycle":3,"time_ms":3000,"seq":17,"kind":"exchange_begun","a":12,"b":209}
//! ```
//!
//! `a`/`b` carry the kind's payload (initiator/peer, node, or epoch) and
//! are omitted when absent. The writer and parser are hand-rolled — the
//! protocol crates build offline with no serde_json.

use std::fmt::Write as _;

use crate::event::{Event, EventKind};

/// Serializes one event as its canonical JSONL line (no trailing newline).
pub fn to_json_line(event: &Event) -> String {
    let mut line = String::with_capacity(96);
    let _ = write!(
        line,
        "{{\"cycle\":{},\"time_ms\":{},\"seq\":{},\"kind\":\"{}\"",
        event.cycle,
        event.time_ms,
        event.seq,
        event.kind.name()
    );
    match event.kind {
        EventKind::NodeJoined { node }
        | EventKind::NodeDeparted { node }
        | EventKind::ValueCorrupted { node }
        | EventKind::ExchangeRejected { node }
        | EventKind::LeaderElected { node } => {
            let _ = write!(line, ",\"a\":{node}");
        }
        EventKind::ExchangeVetoed { initiator, peer }
        | EventKind::ExchangeBegun { initiator, peer } => {
            let _ = write!(line, ",\"a\":{initiator},\"b\":{peer}");
        }
        EventKind::EpochRestarted { epoch } => {
            let _ = write!(line, ",\"a\":{epoch}");
        }
        EventKind::MessageLost | EventKind::MessageDelivered | EventKind::ExchangeCompleted => {}
    }
    line.push('}');
    line
}

/// Serializes a merged event stream as a JSONL document (one line per
/// event, each newline-terminated).
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 80);
    for event in events {
        out.push_str(&to_json_line(event));
        out.push('\n');
    }
    out
}

/// Why a trace line failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceParseError {
    /// A required integer field was missing or malformed.
    MissingField {
        /// 1-based line number.
        line: usize,
        /// The field that was absent or unreadable.
        field: &'static str,
    },
    /// The `kind` tag was not one of the known event names.
    UnknownKind {
        /// 1-based line number.
        line: usize,
        /// The unrecognized tag.
        kind: String,
    },
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceParseError::MissingField { line, field } => {
                write!(f, "line {line}: missing or malformed field `{field}`")
            }
            TraceParseError::UnknownKind { line, kind } => {
                write!(f, "line {line}: unknown event kind `{kind}`")
            }
        }
    }
}

impl std::error::Error for TraceParseError {}

/// Extracts an integer field `"name":123` from a flat JSON object line.
fn int_field(line: &str, name: &str) -> Option<u64> {
    let needle = format!("\"{name}\":");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts a string field `"name":"value"` from a flat JSON object line.
fn str_field<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let needle = format!("\"{name}\":\"");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}

/// Parses a JSONL trace document back into events. Blank lines are
/// skipped; any malformed line is a typed error.
pub fn from_jsonl(text: &str) -> Result<Vec<Event>, TraceParseError> {
    let mut events = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let cycle = int_field(line, "cycle").ok_or(TraceParseError::MissingField {
            line: lineno,
            field: "cycle",
        })?;
        let time_ms = int_field(line, "time_ms").ok_or(TraceParseError::MissingField {
            line: lineno,
            field: "time_ms",
        })?;
        let seq = int_field(line, "seq").ok_or(TraceParseError::MissingField {
            line: lineno,
            field: "seq",
        })?;
        let kind_tag = str_field(line, "kind").ok_or(TraceParseError::MissingField {
            line: lineno,
            field: "kind",
        })?;
        let a = int_field(line, "a");
        let b = int_field(line, "b");
        let need_a = |field| {
            a.ok_or(TraceParseError::MissingField {
                line: lineno,
                field,
            })
        };
        let kind = match kind_tag {
            "node_joined" => EventKind::NodeJoined { node: need_a("a")? },
            "node_departed" => EventKind::NodeDeparted { node: need_a("a")? },
            "value_corrupted" => EventKind::ValueCorrupted { node: need_a("a")? },
            "exchange_vetoed" => EventKind::ExchangeVetoed {
                initiator: need_a("a")?,
                peer: b.ok_or(TraceParseError::MissingField {
                    line: lineno,
                    field: "b",
                })?,
            },
            "exchange_begun" => EventKind::ExchangeBegun {
                initiator: need_a("a")?,
                peer: b.ok_or(TraceParseError::MissingField {
                    line: lineno,
                    field: "b",
                })?,
            },
            "message_lost" => EventKind::MessageLost,
            "message_delivered" => EventKind::MessageDelivered,
            "exchange_completed" => EventKind::ExchangeCompleted,
            "exchange_rejected" => EventKind::ExchangeRejected { node: need_a("a")? },
            "epoch_restarted" => EventKind::EpochRestarted {
                epoch: need_a("a")?,
            },
            "leader_elected" => EventKind::LeaderElected { node: need_a("a")? },
            other => {
                return Err(TraceParseError::UnknownKind {
                    line: lineno,
                    kind: other.to_string(),
                });
            }
        };
        events.push(Event {
            cycle,
            time_ms,
            seq,
            kind,
        });
    }
    Ok(events)
}

/// Renders a human-readable summary of a trace: per-kind totals, cycle
/// span, and the per-cycle exchange/loss profile.
pub fn summarize(events: &[Event]) -> String {
    if events.is_empty() {
        return "empty trace\n".to_string();
    }
    let mut first_cycle = u64::MAX;
    let mut last_cycle = 0u64;
    // (name, count) pairs in a fixed schema order.
    const KINDS: [&str; 11] = [
        "node_joined",
        "node_departed",
        "value_corrupted",
        "exchange_vetoed",
        "exchange_begun",
        "message_lost",
        "message_delivered",
        "exchange_completed",
        "exchange_rejected",
        "epoch_restarted",
        "leader_elected",
    ];
    let mut counts = [0u64; KINDS.len()];
    for event in events {
        first_cycle = first_cycle.min(event.cycle);
        last_cycle = last_cycle.max(event.cycle);
        if let Some(idx) = KINDS.iter().position(|k| *k == event.kind.name()) {
            counts[idx] += 1;
        }
    }
    let begun = counts[4];
    let lost = counts[5];
    let completed = counts[7];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace: {} events over cycles {first_cycle}..={last_cycle}",
        events.len()
    );
    for (kind, count) in KINDS.iter().zip(counts.iter()) {
        if *count > 0 {
            let _ = writeln!(out, "  {kind:<20} {count}");
        }
    }
    if begun > 0 {
        let loss_pct = 100.0 * lost as f64 / begun as f64;
        let complete_pct = 100.0 * completed as f64 / begun as f64;
        let _ = writeln!(
            out,
            "exchanges: {begun} begun, {completed} loss-free ({complete_pct:.1}%), {lost} messages lost ({loss_pct:.1}% of exchanges)"
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                cycle: 0,
                time_ms: 0,
                seq: 0,
                kind: EventKind::NodeDeparted { node: 4 },
            },
            Event {
                cycle: 0,
                time_ms: 0,
                seq: 0,
                kind: EventKind::ExchangeBegun {
                    initiator: 1,
                    peer: 2,
                },
            },
            Event {
                cycle: 0,
                time_ms: 0,
                seq: 0,
                kind: EventKind::MessageLost,
            },
            Event {
                cycle: 1,
                time_ms: 1000,
                seq: 0,
                kind: EventKind::EpochRestarted { epoch: 0 },
            },
        ]
    }

    #[test]
    fn jsonl_round_trips() {
        let events = sample_events();
        let text = to_jsonl(&events);
        let parsed = from_jsonl(&text).unwrap();
        assert_eq!(parsed, events);
    }

    #[test]
    fn line_shape_is_stable() {
        let line = to_json_line(&Event {
            cycle: 3,
            time_ms: 3000,
            seq: 17,
            kind: EventKind::ExchangeBegun {
                initiator: 12,
                peer: 209,
            },
        });
        assert_eq!(
            line,
            "{\"cycle\":3,\"time_ms\":3000,\"seq\":17,\"kind\":\"exchange_begun\",\"a\":12,\"b\":209}"
        );
    }

    #[test]
    fn parse_errors_are_typed() {
        let err = from_jsonl("{\"cycle\":1}\n").unwrap_err();
        assert_eq!(
            err,
            TraceParseError::MissingField {
                line: 1,
                field: "time_ms"
            }
        );
        let err =
            from_jsonl("{\"cycle\":1,\"time_ms\":2,\"seq\":3,\"kind\":\"warp\"}\n").unwrap_err();
        assert_eq!(
            err,
            TraceParseError::UnknownKind {
                line: 1,
                kind: "warp".to_string()
            }
        );
    }

    #[test]
    fn summary_counts_kinds() {
        let text = summarize(&sample_events());
        assert!(text.contains("4 events over cycles 0..=1"), "{text}");
        assert!(text.contains("exchange_begun"), "{text}");
        assert!(text.contains("1 begun"), "{text}");
    }
}
