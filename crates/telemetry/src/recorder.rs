//! A bounded ring buffer of [`Event`] records.

use std::collections::VecDeque;

use crate::event::{Event, EventKind};

/// A bounded per-node / per-shard event ring.
///
/// Each runtime owns one recorder per independent execution unit (one per
/// shard in [`ShardedSimulation`], one per node in the live runtime, one
/// for the whole engine in the single-threaded simulators). Recording is
/// append-only and never read back by protocol code; the engine drains the
/// rings after the fact and merges them with
/// [`merge_events`](crate::event::merge_events).
///
/// A recorder built with capacity 0 is disabled: every call is a no-op, so
/// the disabled path stays branch-cheap on the hot loops.
///
/// When the ring is full the *oldest* event is evicted and the
/// [`dropped`](FlightRecorder::dropped) counter increments; a trace with a
/// non-zero drop count is still valid but no longer guaranteed
/// bit-identical across shard counts (the rings fill at different rates).
///
/// [`ShardedSimulation`]: https://docs.rs/gossip-sim
#[derive(Debug, Default)]
pub struct FlightRecorder {
    ring: VecDeque<Event>,
    capacity: usize,
    cycle: u64,
    time_ms: u64,
    dropped: u64,
}

impl FlightRecorder {
    /// Creates a recorder holding at most `capacity` events (0 = disabled).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            // Lazily allocated on first record so a disabled recorder is free.
            ring: VecDeque::new(),
            capacity,
            cycle: 0,
            time_ms: 0,
            dropped: 0,
        }
    }

    /// Whether this recorder stores anything at all.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Stamps the (cycle, injected-clock time) context used by subsequent
    /// [`record`](Self::record) calls.
    pub fn set_context(&mut self, cycle: u64, time_ms: u64) {
        self.cycle = cycle;
        self.time_ms = time_ms;
    }

    /// Appends one event under the current context, evicting the oldest
    /// record if the ring is full.
    pub fn record(&mut self, seq: u64, kind: EventKind) {
        if self.capacity == 0 {
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(Event {
            cycle: self.cycle,
            time_ms: self.time_ms,
            seq,
            kind,
        });
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events evicted due to ring overflow since construction.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Removes and returns all buffered events in recording order.
    pub fn drain(&mut self) -> Vec<Event> {
        self.ring.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_zero_is_a_no_op() {
        let mut r = FlightRecorder::new(0);
        r.set_context(3, 30);
        r.record(0, EventKind::MessageLost);
        assert!(!r.is_enabled());
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn overflow_evicts_oldest_and_counts() {
        let mut r = FlightRecorder::new(2);
        r.set_context(0, 0);
        r.record(0, EventKind::NodeJoined { node: 0 });
        r.record(1, EventKind::NodeJoined { node: 1 });
        r.record(2, EventKind::NodeJoined { node: 2 });
        assert_eq!(r.dropped(), 1);
        let events = r.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::NodeJoined { node: 1 });
        assert_eq!(events[1].kind, EventKind::NodeJoined { node: 2 });
        assert!(r.is_empty());
    }

    #[test]
    fn context_stamps_cycle_and_time() {
        let mut r = FlightRecorder::new(8);
        r.set_context(5, 5_000);
        r.record(7, EventKind::ExchangeCompleted);
        let events = r.drain();
        assert_eq!(events[0].cycle, 5);
        assert_eq!(events[0].time_ms, 5_000);
        assert_eq!(events[0].seq, 7);
    }
}
