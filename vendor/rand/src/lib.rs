//! A minimal, dependency-free stand-in for the [`rand`] crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate re-implements exactly the API surface the workspace
//! uses, with the same names and signatures as `rand` 0.8:
//!
//! * [`RngCore`] / [`Rng`] / [`SeedableRng`] traits,
//! * [`rngs::StdRng`] — here a xoshiro256++ generator seeded via SplitMix64
//!   (deterministic: the same `seed_from_u64` always yields the same stream),
//! * `gen`, `gen_range`, `gen_bool` for the primitive types the workspace
//!   samples,
//! * [`seq::SliceRandom`] with Fisher–Yates `shuffle` and `choose`.
//!
//! The generator is *not* cryptographically secure (the real `StdRng` is
//! ChaCha12); it is a high-quality statistical PRNG, which is all the
//! simulations need. Streams differ from upstream `rand`, so seeds are
//! reproducible within this workspace but not against other codebases.
//!
//! [`rand`]: https://docs.rs/rand/0.8

#![forbid(unsafe_code)]

/// The core of a random number generator: uniformly random words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&word[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its "standard" distribution
    /// (uniform over the type's range; `[0, 1)` for floats).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod distributions {
    //! The standard distribution and uniform-range sampling.

    use super::Rng;

    /// A distribution that can produce values of type `T`.
    pub trait Distribution<T> {
        /// Samples one value using `rng`.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "standard" distribution: uniform over the whole type (floats in
    /// `[0, 1)`).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<u64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<usize> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Distribution<u8> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u8 {
            (rng.next_u64() >> 56) as u8
        }
    }

    impl Distribution<u16> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u16 {
            (rng.next_u64() >> 48) as u16
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 significant bits, uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    pub mod uniform {
        //! Uniform sampling from ranges.

        use super::super::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// Marker for types that [`SampleRange`] can produce.
        pub trait SampleUniform: Sized {}

        /// A range that can produce uniformly distributed values of type `T`.
        pub trait SampleRange<T> {
            /// Samples one value from the range.
            ///
            /// # Panics
            ///
            /// Panics when the range is empty.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        /// Maps a random `u64` onto `[0, span)` without modulo bias
        /// (widening-multiply method; the residual bias of skipping the
        /// rejection step is at most 2⁻⁶⁴ per sample).
        fn mul_shift(word: u64, span: u128) -> u64 {
            ((u128::from(word) * span) >> 64) as u64
        }

        macro_rules! uniform_int {
            ($($ty:ty),*) => {$(
                impl SampleUniform for $ty {}

                impl SampleRange<$ty> for Range<$ty> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                        assert!(
                            self.start < self.end,
                            "cannot sample from empty range {}..{}",
                            self.start,
                            self.end
                        );
                        let span = (self.end as i128 - self.start as i128) as u128;
                        self.start.wrapping_add(mul_shift(rng.next_u64(), span) as $ty)
                    }
                }

                impl SampleRange<$ty> for RangeInclusive<$ty> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                        let (start, end) = (*self.start(), *self.end());
                        assert!(
                            start <= end,
                            "cannot sample from empty range {start}..={end}"
                        );
                        let span = (end as i128 - start as i128) as u128 + 1;
                        start.wrapping_add(mul_shift(rng.next_u64(), span) as $ty)
                    }
                }
            )*};
        }

        uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! uniform_float {
            ($($ty:ty),*) => {$(
                impl SampleUniform for $ty {}

                impl SampleRange<$ty> for Range<$ty> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                        assert!(
                            self.start < self.end,
                            "cannot sample from empty range {}..{}",
                            self.start,
                            self.end
                        );
                        let unit = (rng.next_u64() >> 11) as $ty
                            * (1.0 / (1u64 << 53) as $ty);
                        let value = self.start + unit * (self.end - self.start);
                        // Floating rounding can land exactly on `end`; clamp
                        // back inside the half-open range.
                        if value < self.end { value } else { prev_down(self.end) }
                    }
                }

                impl SampleRange<$ty> for RangeInclusive<$ty> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                        let (start, end) = (*self.start(), *self.end());
                        assert!(
                            start <= end,
                            "cannot sample from empty range {start}..={end}"
                        );
                        let unit = (rng.next_u64() >> 11) as $ty
                            * (1.0 / (1u64 << 53) as $ty);
                        start + unit * (end - start)
                    }
                }
            )*};
        }

        fn prev_down_f64(x: f64) -> f64 {
            f64::from_bits(x.to_bits() - 1)
        }
        fn prev_down_f32(x: f32) -> f32 {
            f32::from_bits(x.to_bits() - 1)
        }
        trait PrevDown {
            fn prev(self) -> Self;
        }
        impl PrevDown for f64 {
            fn prev(self) -> Self {
                prev_down_f64(self)
            }
        }
        impl PrevDown for f32 {
            fn prev(self) -> Self {
                prev_down_f32(self)
            }
        }
        fn prev_down<T: PrevDown>(x: T) -> T {
            x.prev()
        }

        uniform_float!(f32, f64);
    }

    pub use uniform::{SampleRange, SampleUniform};
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded by SplitMix64 expansion of a `u64`.
    ///
    /// Identical seeds always produce identical streams, on every platform.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut sm);
            }
            // xoshiro256++ must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related helpers.

    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn identical_seeds_give_identical_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let a_vals: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let b_vals: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(a_vals, b_vals);
    }

    #[test]
    fn floats_are_in_unit_interval_and_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let mut rng = StdRng::seed_from_u64(7);
        assert!((0..n).all(|_| {
            let x: f64 = rng.gen();
            (0.0..1.0).contains(&x)
        }));
    }

    #[test]
    fn gen_range_is_unbiased_across_buckets() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            let expected = n as f64 / 10.0;
            assert!(
                (f64::from(c) - expected).abs() < 0.05 * expected,
                "bucket count {c} too far from {expected}"
            );
        }
    }

    #[test]
    fn inclusive_and_float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let k = rng.gen_range(0..=5usize);
            assert!(k <= 5);
            let x = rng.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&x));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
        let mut rng = StdRng::seed_from_u64(11);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        let mut rng = StdRng::seed_from_u64(11);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_stable() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());

        let mut rng2 = StdRng::seed_from_u64(5);
        let mut v2: Vec<usize> = (0..100).collect();
        v2.shuffle(&mut rng2);
        assert_eq!(v, v2);
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(1);
        let dynamic: &mut dyn RngCore = &mut rng;
        let x = dynamic.gen_range(0..100usize);
        assert!(x < 100);
        let f: f64 = dynamic.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
