//! Derive macros for the offline `serde` stub.
//!
//! The stub traits are pure markers, so the derives only need to find the
//! type's name and emit an empty `impl`. A hand-rolled token scan replaces
//! `syn`/`quote` (unavailable offline); it supports any non-generic `struct`
//! or `enum`, which covers every serde-derived type in this workspace.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the identifier that names the derived type: the first identifier
/// following the `struct` or `enum` keyword at the top level of the item.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(token) = tokens.next() {
        if let TokenTree::Ident(ident) = &token {
            let word = ident.to_string();
            if word == "struct" || word == "enum" {
                for next in tokens.by_ref() {
                    if let TokenTree::Ident(name) = next {
                        return name.to_string();
                    }
                }
            }
        }
    }
    panic!("serde_derive stub: expected a struct or enum item");
}

fn assert_not_generic(name: &str, input: &TokenStream) {
    let mut after_name = false;
    for token in input.clone() {
        match &token {
            TokenTree::Ident(ident) if ident.to_string() == *name => after_name = true,
            TokenTree::Punct(punct) if after_name && punct.as_char() == '<' => {
                panic!(
                    "serde_derive stub: generic type `{name}` is not supported; \
                     write the marker impls by hand"
                );
            }
            TokenTree::Group(_) | TokenTree::Punct(_) if after_name => break,
            _ => {}
        }
    }
}

/// Derives the stub `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input.clone());
    assert_not_generic(&name, &input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl must parse")
}

/// Derives the stub `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input.clone());
    assert_not_generic(&name, &input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl must parse")
}
