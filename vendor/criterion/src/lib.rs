//! A minimal, dependency-free stand-in for the [`criterion`] benchmark
//! harness.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate mirrors the `criterion` API the workspace's
//! `perf_micro` bench uses — `criterion_group!`/`criterion_main!`,
//! [`Criterion::bench_function`], benchmark groups with `sample_size`, and
//! [`Bencher::iter`]/[`Bencher::iter_batched`] — but measures plain
//! wall-clock time (median over the samples) instead of running criterion's
//! statistical analysis. Numbers are printed in criterion's familiar
//! one-line-per-benchmark format.
//!
//! [`criterion`]: https://docs.rs/criterion

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], as the real criterion provides.
pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost; accepted for API compatibility,
/// the stub times every batch individually regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Re-create the input on every iteration.
    PerIteration,
}

/// Timing driver handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Bencher {
            samples: Vec::with_capacity(sample_count),
            sample_count,
        }
    }

    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        black_box(routine());
        for _ in 0..self.sample_count {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs produced by `setup`; only the routine
    /// is measured.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.sample_count {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort_unstable();
        self.samples[self.samples.len() / 2]
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

const DEFAULT_SAMPLE_COUNT: usize = 20;

/// The benchmark harness: collects named benchmarks and prints one timing
/// line per benchmark.
#[derive(Debug)]
pub struct Criterion {
    sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_count: DEFAULT_SAMPLE_COUNT,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(1);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), self.sample_count, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_count: self.sample_count,
            _criterion: self,
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_count: usize, f: &mut F) {
    let mut bencher = Bencher::new(sample_count);
    f(&mut bencher);
    let median = bencher.median();
    println!(
        "{id:<50} time: [{}] (median of {sample_count})",
        format_duration(median)
    );
}

/// A group of related benchmarks sharing a name prefix and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_count: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(1);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.sample_count, &mut f);
        self
    }

    /// Finishes the group (the stub prints nothing extra).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        #[allow(missing_docs)]
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut counter = 0u64;
        Criterion::default()
            .sample_size(3)
            .bench_function("counter", |b| b.iter(|| counter += 1));
        // 1 warm-up + 3 samples.
        assert_eq!(counter, 4);
    }

    #[test]
    fn iter_batched_separates_setup_from_routine() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("g");
        group.sample_size(2);
        let mut sum = 0u64;
        group.bench_function("batched", |b| {
            b.iter_batched(|| 21u64, |x| sum += x, BatchSize::SmallInput)
        });
        group.finish();
        assert_eq!(sum, 63); // warm-up + 2 samples, 21 each
    }

    #[test]
    fn durations_format_with_sensible_units() {
        assert_eq!(format_duration(Duration::from_nanos(10)), "10 ns");
        assert_eq!(format_duration(Duration::from_micros(2)), "2.00 µs");
        assert_eq!(format_duration(Duration::from_millis(3)), "3.00 ms");
        assert_eq!(format_duration(Duration::from_secs(4)), "4.00 s");
    }
}
