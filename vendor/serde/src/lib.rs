//! A minimal, dependency-free stand-in for the [`serde`] crate.
//!
//! The build environment for this workspace has no access to crates.io. The
//! workspace only ever uses serde as *markers* — `#[derive(Serialize,
//! Deserialize)]` plus occasional `T: Serialize` bounds; no data format crate
//! (JSON, bincode, …) is ever linked. This stub therefore provides the two
//! traits with no required methods and a derive macro that emits empty
//! implementations, so all the derives and bounds compile unchanged and can
//! be swapped back to real serde the moment a registry is available.
//!
//! [`serde`]: https://docs.rs/serde/1

#![forbid(unsafe_code)]

// Lets the derive-generated `::serde` paths resolve inside this crate's own
// test module.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// A type that can be serialized.
///
/// In this offline stub the trait is a pure marker; real serde adds the
/// `serialize` method driven by a `Serializer`.
pub trait Serialize {}

/// A type that can be deserialized from borrowed data with lifetime `'de`.
///
/// In this offline stub the trait is a pure marker; real serde adds the
/// `deserialize` method driven by a `Deserializer`.
pub trait Deserialize<'de>: Sized {}

macro_rules! impl_markers {
    ($($ty:ty),* $(,)?) => {$(
        impl Serialize for $ty {}
        impl<'de> Deserialize<'de> for $ty {}
    )*};
}

impl_markers!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, char, String
);

impl Serialize for str {}

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}

impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}

impl<T: Serialize> Serialize for [T] {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}

impl<T: Serialize + ?Sized> Serialize for &T {}
impl<T: Serialize + ?Sized> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {}
impl<'de, K, V, S> Deserialize<'de> for std::collections::HashMap<K, V, S>
where
    K: Deserialize<'de>,
    V: Deserialize<'de>,
    S: Default,
{
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}

#[cfg(test)]
mod tests {
    use super::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    struct Plain {
        a: u32,
        b: f64,
    }

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    #[allow(dead_code)]
    enum Shape {
        Push { from: u32 },
        Reply(u64),
        Unit,
    }

    fn assert_serialize<T: Serialize>() {}
    fn assert_deserialize<T: for<'de> Deserialize<'de>>() {}

    #[test]
    fn derives_produce_usable_impls() {
        assert_serialize::<Plain>();
        assert_deserialize::<Plain>();
        assert_serialize::<Shape>();
        assert_deserialize::<Shape>();
        assert_serialize::<Vec<Plain>>();
        assert_deserialize::<Option<Shape>>();
    }
}
