//! A minimal, dependency-free stand-in for the [`bytes`] crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate provides the subset of `bytes` 1.x the wire codec
//! uses: [`BytesMut`] for building frames with the big-endian [`BufMut`]
//! putters, [`Bytes`] as the frozen, cheaply-cloneable result, and [`Buf`]
//! getters implemented on `&[u8]` for decoding. The zero-copy slicing
//! machinery of the real crate is not reproduced; `Bytes` shares its backing
//! storage through an `Arc` which is all the codec needs.
//!
//! [`bytes`]: https://docs.rs/bytes/1

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::Arc;

/// An immutable, cheaply-cloneable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data: data.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{:?}", &self.data)
    }
}

/// A growable byte buffer for building frames.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with room for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data.into(),
        }
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Write access to a byte buffer. All multi-byte putters are big-endian,
/// matching the defaults of the real `bytes` crate.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, value: u8) {
        self.put_slice(&[value]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, value: u16) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, value: u32) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, value: u64) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a big-endian IEEE-754 `f64`.
    fn put_f64(&mut self, value: f64) {
        self.put_u64(value.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read access to a byte buffer. All multi-byte getters are big-endian,
/// matching the defaults of the real `bytes` crate.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Removes and returns the next `N`-byte array.
    ///
    /// # Panics
    ///
    /// Panics when fewer than `N` bytes remain.
    fn take_array<const N: usize>(&mut self) -> [u8; N];

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_array::<1>()[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take_array())
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take_array())
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take_array())
    }

    /// Reads a big-endian IEEE-754 `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(
            self.len() >= N,
            "buffer underflow: need {N} bytes, have {}",
            self.len()
        );
        let (head, tail) = self.split_at(N);
        let mut out = [0u8; N];
        out.copy_from_slice(head);
        *self = tail;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut, Bytes, BytesMut};

    #[test]
    fn put_get_round_trip_is_big_endian() {
        let mut buf = BytesMut::with_capacity(21);
        buf.put_u8(0xAB);
        buf.put_u32(0x0102_0304);
        buf.put_u64(0x0506_0708_090A_0B0C);
        buf.put_f64(1.5);
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 21);
        assert_eq!(frozen[1..5], [1, 2, 3, 4]);

        let mut read: &[u8] = &frozen;
        assert_eq!(read.get_u8(), 0xAB);
        assert_eq!(read.get_u32(), 0x0102_0304);
        assert_eq!(read.get_u64(), 0x0506_0708_090A_0B0C);
        assert_eq!(read.get_f64(), 1.5);
        assert_eq!(read.remaining(), 0);
    }

    #[test]
    fn bytes_clones_share_contents() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn reading_past_the_end_panics() {
        let mut short: &[u8] = &[1u8];
        let _ = short.get_u32();
    }
}
