//! A minimal, dependency-free stand-in for the [`crossbeam`] crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate implements the one piece of crossbeam the workspace
//! uses: `channel::unbounded` MPMC channels whose `Sender` *and* `Receiver`
//! are cloneable, with `recv_timeout` semantics matching crossbeam
//! (`Timeout` while senders live, `Disconnected` once the queue is drained
//! and every sender is gone). Built on `Mutex` + `Condvar`; the lock-free
//! performance of real crossbeam is not reproduced, which is irrelevant at
//! the message rates of the in-process gossip cluster.
//!
//! [`crossbeam`]: https://docs.rs/crossbeam

#![forbid(unsafe_code)]

pub mod channel {
    //! Multi-producer multi-consumer FIFO channels.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
    }

    /// The sending half of an unbounded channel. Cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel. Cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone; the
    /// unsent message is handed back.
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait elapsed with the queue still empty.
        Timeout,
        /// The queue is empty and every sender has been dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The queue is currently empty.
        Empty,
        /// The queue is empty and every sender has been dropped.
        Disconnected,
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.queue.push_back(value);
            drop(state);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues a message, waiting up to `timeout` for one to arrive.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] when the wait elapses while senders
        /// are still connected; [`RecvTimeoutError::Disconnected`] when the
        /// queue is empty and every sender has been dropped.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = state.queue.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (next, wait) = self
                    .shared
                    .not_empty
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                state = next;
                if wait.timed_out() && state.queue.is_empty() {
                    return if state.senders == 0 {
                        Err(RecvTimeoutError::Disconnected)
                    } else {
                        Err(RecvTimeoutError::Timeout)
                    };
                }
            }
        }

        /// Dequeues a message if one is ready, without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when the queue is empty with senders
        /// still connected; [`TryRecvError::Disconnected`] otherwise.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            match state.queue.pop_front() {
                Some(value) => Ok(value),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            state.senders -= 1;
            let last = state.senders == 0;
            drop(state);
            if last {
                // Wake blocked receivers so they observe the disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers -= 1;
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender(..)")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver(..)")
        }
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a channel with no receivers")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order_within_one_sender() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            let got: Vec<i32> = (0..10)
                .map(|_| rx.recv_timeout(Duration::from_millis(10)).unwrap())
                .collect();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn timeout_then_disconnect() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn queued_messages_survive_sender_drop() {
            let (tx, rx) = unbounded();
            tx.send(7u8).unwrap();
            drop(tx);
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(7));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn send_fails_once_all_receivers_are_gone() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(1u8).is_err());
        }

        #[test]
        fn cloned_receivers_share_the_queue() {
            let (tx, rx1) = unbounded();
            let rx2 = rx1.clone();
            tx.send(1u8).unwrap();
            tx.send(2u8).unwrap();
            let a = rx1.recv_timeout(Duration::from_millis(10)).unwrap();
            let b = rx2.recv_timeout(Duration::from_millis(10)).unwrap();
            let mut got = vec![a, b];
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
        }

        #[test]
        fn wakes_a_blocked_receiver_across_threads() {
            let (tx, rx) = unbounded();
            let handle =
                std::thread::spawn(move || rx.recv_timeout(Duration::from_secs(5)).unwrap());
            std::thread::sleep(Duration::from_millis(20));
            tx.send(42u8).unwrap();
            assert_eq!(handle.join().unwrap(), 42);
        }
    }
}
