//! A minimal, dependency-free stand-in for the [`proptest`] crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate implements the subset of proptest the workspace's
//! property tests use: the [`proptest!`] macro (including the
//! `#![proptest_config(...)]` inner attribute), `prop_assert!` /
//! `prop_assert_eq!`, range and tuple strategies, `collection::vec` and
//! `bool::ANY`.
//!
//! Differences from the real crate:
//!
//! * cases are drawn from a seeded deterministic generator (seed = FNV hash
//!   of the test-function name), so failures are reproducible but the
//!   sampling is not controllable via `PROPTEST_*` environment variables;
//! * there is no shrinking — a failing case reports the panic from
//!   `prop_assert!` directly (the case index is printed in the message);
//! * only the strategies listed above exist.
//!
//! [`proptest`]: https://docs.rs/proptest

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut StdRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

    /// Strategy returned by [`crate::collection::vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for uniformly random booleans ([`crate::bool::ANY`]).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod bool {
    //! Boolean strategies.

    /// Uniformly random `true`/`false`.
    pub const ANY: super::strategy::BoolAny = super::strategy::BoolAny;
}

pub mod test_runner {
    //! Test-runner configuration.

    /// Controls how many random cases each property test executes.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ProptestConfig {
        /// Number of cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real proptest default.
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod prelude {
    //! The glob-importable surface, mirroring `proptest::prelude`.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Deterministic per-test generator: FNV-1a of the test name seeds StdRng.
#[doc(hidden)]
pub fn __rng_for(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Declares property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` that runs the body over `config.cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::__rng_for(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                )+
                let __run = || -> () { $body };
                __run();
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// `assert!` under proptest's name (the stub panics instead of shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` under proptest's name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` under proptest's name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Range, tuple and vec strategies stay inside their bounds.
        #[test]
        fn strategies_respect_bounds(
            x in -5.0f64..5.0,
            pair in (0u32..10, 0u32..3),
            values in crate::collection::vec(0usize..100, 1..20),
        ) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!(pair.0 < 10 && pair.1 < 3);
            prop_assert!(!values.is_empty() && values.len() < 20);
            prop_assert!(values.iter().all(|&v| v < 100));
        }
    }

    #[test]
    fn bool_any_generates_both_values() {
        use crate::strategy::Strategy;
        let mut rng = crate::__rng_for("bool_any_generates_both_values");
        let draws: Vec<bool> = (0..64).map(|_| crate::bool::ANY.sample(&mut rng)).collect();
        assert!(draws.contains(&true) && draws.contains(&false));
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        use rand::RngCore;
        let a = crate::__rng_for("x").next_u64();
        let b = crate::__rng_for("x").next_u64();
        let c = crate::__rng_for("y").next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
