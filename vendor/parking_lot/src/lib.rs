//! A minimal, dependency-free stand-in for the [`parking_lot`] crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate wraps `std::sync` primitives behind `parking_lot`'s
//! API: `lock()` returns the guard directly (no `Result`), and a poisoned
//! lock is transparently recovered instead of propagating the poison — the
//! same "poisoning does not exist" semantics parking_lot is used for.
//!
//! [`parking_lot`]: https://docs.rs/parking_lot

#![forbid(unsafe_code)]

use std::fmt;

/// A mutual-exclusion lock without poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    ///
    /// A panic in another thread while holding the lock does not poison it.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: guard }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// A reader–writer lock without poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn panicking_holder_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
