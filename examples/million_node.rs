//! Million-node epochs through the sharded cycle engine.
//!
//! The paper's headline claim is that push–pull epidemic aggregation
//! converges in a handful of cycles *independently of network size*. This
//! example validates the claim at the 10⁶-node scale the paper targets: it
//! runs one full 30-cycle epoch over a million nodes through
//! [`ShardedSimulation`] and asserts the Section 3 convergence factor — the
//! per-cycle variance-reduction rate of `GETPAIR_SEQ`, 1/(2√e) ≈ 0.303 —
//! the same value the 1 000-node runs measure.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example million_node                     # 10⁶ nodes, 30 cycles
//! cargo run --release --example million_node -- --nodes 100000 --shards 4   # CI smoke scale
//! cargo run --release --example million_node -- --baseline      # + single-threaded comparison
//! cargo run --release --example million_node -- --csv out.csv   # record per-cycle telemetry
//! ```

use epidemic_aggregation::prelude::*;
use gossip_sim::sharded::cycle_telemetry_table;
use std::time::Instant;

fn parse_args() -> (usize, usize, usize, Option<String>, bool) {
    let mut nodes = 1_000_000usize;
    let mut shards = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(gossip_sim::arena::MAX_SHARDS);
    let mut cycles = 30usize;
    let mut csv = None;
    let mut baseline = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--nodes" => nodes = args.next().and_then(|v| v.parse().ok()).unwrap_or(nodes),
            "--shards" => shards = args.next().and_then(|v| v.parse().ok()).unwrap_or(shards),
            "--cycles" => cycles = args.next().and_then(|v| v.parse().ok()).unwrap_or(cycles),
            "--csv" => csv = args.next(),
            "--baseline" => baseline = true,
            other => {
                eprintln!("ignoring unknown argument {other}");
            }
        }
    }
    (nodes, shards, cycles, csv, baseline)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (nodes, shards, cycles, csv, baseline) = parse_args();
    assert!(cycles >= 3, "need a few cycles to measure a reduction rate");
    let seed = 20040102;
    println!("million_node: {nodes} nodes, {shards} shards, {cycles} cycles (one epoch)");

    // Deterministic spread of initial values; the true average is known.
    let values: Vec<f64> = (0..nodes).map(|i| (i % 1_000) as f64).collect();
    let true_mean = mean(&values);

    let protocol = ProtocolConfig::builder()
        .cycles_per_epoch(cycles as u32)
        .build()?;
    let config = ShardedConfig {
        base: SimulationConfig::averaging(protocol),
        shards,
        workers: None,
    };
    let mut sim = ShardedSimulation::new(config, &values, seed)?;

    let started = Instant::now();
    let summaries = sim.run(cycles);
    let elapsed = started.elapsed().as_secs_f64();
    let sharded_rate = cycles as f64 / elapsed;
    println!(
        "sharded engine: {elapsed:.2} s for {cycles} cycles at {nodes} nodes \
         ({sharded_rate:.2} cycles/s, {:.1} M exchanges/s)",
        summaries.iter().map(|s| s.exchanges).sum::<usize>() as f64 / elapsed / 1e6
    );

    // Section 3: the per-cycle variance-reduction factor of GETPAIR_SEQ.
    // The last cycle completes the epoch (instances restart before its
    // summary is taken), so the factor window excludes it.
    let mut factors = Vec::new();
    for pair in summaries[..cycles - 1].windows(2) {
        if pair[0].estimate_variance > 1e-12 {
            factors.push(pair[1].estimate_variance / pair[0].estimate_variance);
        }
    }
    let mean_factor = factors.iter().sum::<f64>() / factors.len() as f64;
    println!(
        "mean per-cycle variance reduction: {mean_factor:.4} (theory 1/(2*sqrt(e)) = {:.4})",
        theory::seq_rate()
    );
    assert!(
        (mean_factor - theory::seq_rate()).abs() < 0.05,
        "size-independent convergence violated: measured {mean_factor} at {nodes} nodes"
    );

    // The epoch completed: every node participated from the start and
    // reports a converged estimate of the true average.
    let last = summaries.last().expect("at least one cycle");
    assert_eq!(
        last.completed_epoch,
        Some(0),
        "the run spans one full epoch"
    );
    assert_eq!(
        last.epoch_estimates.count() as usize,
        nodes,
        "every node reports a converged epoch estimate"
    );
    let epoch_mean = last.epoch_estimates.mean();
    assert!(
        (epoch_mean - true_mean).abs() < 1e-6 * (1.0 + true_mean.abs()),
        "epoch mean {epoch_mean} must equal the true average {true_mean}"
    );
    let spread = last.epoch_estimates.max().unwrap() - last.epoch_estimates.min().unwrap();
    println!(
        "epoch 0 estimates: mean {epoch_mean:.6} (true {true_mean:.6}), max-min spread {spread:.3e}"
    );
    assert!(
        spread < 1.0,
        "after {cycles} cycles all {nodes} estimates must agree closely, spread {spread}"
    );

    if let Some(path) = csv {
        cycle_telemetry_table(&summaries, sim.sampler_config()).write_csv(&path)?;
        println!("per-cycle telemetry written to {path}");
    }

    if baseline {
        let mut reference =
            GossipSimulation::try_new(SimulationConfig::averaging(protocol), &values, seed)?;
        let started = Instant::now();
        reference.run(cycles);
        let ref_elapsed = started.elapsed().as_secs_f64();
        let reference_rate = cycles as f64 / ref_elapsed;
        println!(
            "single-threaded reference: {ref_elapsed:.2} s ({reference_rate:.2} cycles/s) — \
             sharded speedup {:.2}x",
            sharded_rate / reference_rate
        );
    }

    println!("million_node: OK");
    Ok(())
}
