//! Million-node epochs through the sharded cycle engine.
//!
//! The paper's headline claim is that push–pull epidemic aggregation
//! converges in a handful of cycles *independently of network size*. This
//! example validates the claim at the 10⁶-node scale the paper targets (and
//! at 10⁷ with `--full`): it runs one full epoch through
//! [`ShardedSimulation`] and asserts the Section 3 convergence factor — the
//! per-cycle variance-reduction rate of `GETPAIR_SEQ`, 1/(2√e) ≈ 0.303 —
//! the same value the 1 000-node runs measure.
//!
//! Every run also records a machine-readable benchmark report (see
//! `EXPERIMENTS.md`, "Benchmark artifact schema") so CI can gate on
//! throughput regressions; by default it lands in
//! `BENCH_sharded_engine.json` in the working directory — run from the
//! repository root to refresh the committed artifact.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example million_node                   # 10⁶ nodes, 30 cycles
//! cargo run --release --example million_node -- --full         # 10⁷ nodes, 16 shards
//! cargo run --release --example million_node -- --nodes 100000 --shards 4  # CI smoke scale
//! cargo run --release --example million_node -- --workers 4    # pin the worker pool
//! cargo run --release --example million_node -- --sweep-workers  # 1→8 strong-scaling curve
//! cargo run --release --example million_node -- --baseline     # + single-threaded comparison
//! cargo run --release --example million_node -- --csv out.csv  # record per-cycle telemetry
//! cargo run --release --example million_node -- --label ci_smoke \
//!     --assert-baseline BENCH_sharded_engine.json              # regression gate
//! ```
//!
//! The `--full` run asserts a wall-clock budget (default 90 s, override
//! with `GOSSIP_FULL_BUDGET_S`); the regression gate tolerance defaults to
//! 20 % (`GOSSIP_BENCH_TOLERANCE`).

use epidemic_aggregation::prelude::*;
use gossip_analysis::bench::{self, BenchReport, BenchRun};
use gossip_sim::sharded::cycle_telemetry_table;
use std::time::Instant;

struct Args {
    nodes: usize,
    shards: usize,
    workers: Option<usize>,
    cycles: usize,
    csv: Option<String>,
    baseline: bool,
    full: bool,
    sweep_workers: bool,
    label: Option<String>,
    bench_out: String,
    assert_baseline: Option<String>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        nodes: 1_000_000,
        shards: std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(gossip_sim::arena::MAX_SHARDS),
        workers: None,
        cycles: 30,
        csv: None,
        baseline: false,
        full: false,
        sweep_workers: false,
        label: None,
        bench_out: "BENCH_sharded_engine.json".to_string(),
        assert_baseline: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--nodes" => {
                parsed.nodes = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(parsed.nodes)
            }
            "--shards" => {
                parsed.shards = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(parsed.shards)
            }
            "--workers" => parsed.workers = args.next().and_then(|v| v.parse().ok()),
            "--cycles" => {
                parsed.cycles = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(parsed.cycles)
            }
            "--csv" => parsed.csv = args.next(),
            "--baseline" => parsed.baseline = true,
            "--full" => parsed.full = true,
            "--sweep-workers" => parsed.sweep_workers = true,
            "--label" => parsed.label = args.next(),
            "--bench-out" => {
                if let Some(path) = args.next() {
                    parsed.bench_out = path;
                }
            }
            "--assert-baseline" => parsed.assert_baseline = args.next(),
            other => {
                eprintln!("ignoring unknown argument {other}");
            }
        }
    }
    if parsed.full {
        // The tentpole configuration: 10⁷ nodes, 16 shards, one 30-cycle
        // epoch. Explicit --nodes/--shards/--cycles still override.
        parsed.nodes = 10_000_000;
        parsed.shards = 16;
    }
    parsed
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One measured engine run.
struct EngineRun {
    elapsed: f64,
    exchanges: usize,
    workers: usize,
    summaries: Vec<gossip_sim::ShardedCycleSummary>,
}

fn run_engine(
    base: SimulationConfig,
    values: &[f64],
    seed: u64,
    shards: usize,
    workers: Option<usize>,
    cycles: usize,
) -> Result<EngineRun, Box<dyn std::error::Error>> {
    let config = ShardedConfig {
        base,
        shards,
        workers,
    };
    let mut sim = ShardedSimulation::new(config, values, seed)?;
    let effective = sim.effective_workers();
    let started = Instant::now();
    let summaries = sim.run(cycles);
    let elapsed = started.elapsed().as_secs_f64();
    let exchanges = summaries.iter().map(|s| s.exchanges).sum::<usize>();
    Ok(EngineRun {
        elapsed,
        exchanges,
        workers: effective,
        summaries,
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args();
    let (nodes, shards, cycles) = (args.nodes, args.shards, args.cycles);
    assert!(cycles >= 3, "need a few cycles to measure a reduction rate");
    let seed = 20040102;
    println!("million_node: {nodes} nodes, {shards} shards, {cycles} cycles (one epoch)");

    // Deterministic spread of initial values; the true average is known.
    let values: Vec<f64> = (0..nodes).map(|i| (i % 1_000) as f64).collect();
    let true_mean = mean(&values);

    let protocol = ProtocolConfig::builder()
        .cycles_per_epoch(cycles as u32)
        .build()?;
    let base = SimulationConfig::averaging(protocol);
    let EngineRun {
        elapsed,
        exchanges,
        workers,
        summaries,
    } = run_engine(base, &values, seed, shards, args.workers, cycles)?;
    let sharded_rate = cycles as f64 / elapsed;
    println!(
        "sharded engine: {elapsed:.2} s for {cycles} cycles at {nodes} nodes, \
         {workers} worker(s) ({sharded_rate:.2} cycles/s, {:.1} M exchanges/s)",
        exchanges as f64 / elapsed / 1e6
    );

    let mut report = BenchReport::new("million_node", &bench::git_revision());
    let label = args.label.unwrap_or_else(|| {
        if args.full {
            "full_10m".to_string()
        } else {
            format!("nodes_{nodes}")
        }
    });
    report.push(BenchRun {
        label,
        nodes,
        shards,
        workers,
        cycles,
        elapsed_s: elapsed,
        cycles_per_s: sharded_rate,
        exchanges_per_s: exchanges as f64 / elapsed,
    });

    if args.full {
        let budget = env_f64("GOSSIP_FULL_BUDGET_S", 90.0);
        assert!(
            elapsed <= budget,
            "full 10^7-node epoch took {elapsed:.1} s, over the {budget:.0} s budget \
             (override with GOSSIP_FULL_BUDGET_S)"
        );
        println!("full epoch wall clock {elapsed:.1} s within budget {budget:.0} s");
    }

    // Section 3: the per-cycle variance-reduction factor of GETPAIR_SEQ.
    // The last cycle completes the epoch (instances restart before its
    // summary is taken), so the factor window excludes it.
    let mut factors = Vec::new();
    for pair in summaries[..cycles - 1].windows(2) {
        if pair[0].estimate_variance > 1e-12 {
            factors.push(pair[1].estimate_variance / pair[0].estimate_variance);
        }
    }
    let mean_factor = factors.iter().sum::<f64>() / factors.len() as f64;
    println!(
        "mean per-cycle variance reduction: {mean_factor:.4} (theory 1/(2*sqrt(e)) = {:.4})",
        theory::seq_rate()
    );
    assert!(
        (mean_factor - theory::seq_rate()).abs() < 0.05,
        "size-independent convergence violated: measured {mean_factor} at {nodes} nodes"
    );

    // The epoch completed: every node participated from the start and
    // reports a converged estimate of the true average.
    let last = summaries.last().expect("at least one cycle");
    assert_eq!(
        last.completed_epoch,
        Some(0),
        "the run spans one full epoch"
    );
    assert_eq!(
        last.epoch_estimates.count() as usize,
        nodes,
        "every node reports a converged epoch estimate"
    );
    let epoch_mean = last.epoch_estimates.mean();
    assert!(
        (epoch_mean - true_mean).abs() < 1e-6 * (1.0 + true_mean.abs()),
        "epoch mean {epoch_mean} must equal the true average {true_mean}"
    );
    let spread = last.epoch_estimates.max().unwrap() - last.epoch_estimates.min().unwrap();
    println!(
        "epoch 0 estimates: mean {epoch_mean:.6} (true {true_mean:.6}), max-min spread {spread:.3e}"
    );
    assert!(
        spread < 1.0,
        "after {cycles} cycles all {nodes} estimates must agree closely, spread {spread}"
    );

    if let Some(path) = args.csv {
        cycle_telemetry_table(&summaries, SamplerConfig::UniformComplete).write_csv(&path)?;
        println!("per-cycle telemetry written to {path}");
    }

    if args.sweep_workers {
        // Strong-scaling curve: the same workload pinned to 1/2/4/8 worker
        // threads. Worker count never changes results — only wall clock —
        // so every sweep point must land on bit-identical statistics.
        println!("worker sweep at {nodes} nodes, {shards} shards:");
        for requested in [1usize, 2, 4, 8] {
            let sweep = run_engine(base, &values, seed, shards, Some(requested), cycles)?;
            let (w_elapsed, w_exchanges, w_effective, w_summaries) = (
                sweep.elapsed,
                sweep.exchanges,
                sweep.workers,
                sweep.summaries,
            );
            let w_last = w_summaries.last().expect("at least one cycle");
            assert_eq!(
                w_last.estimate_variance.to_bits(),
                last.estimate_variance.to_bits(),
                "worker count {requested} changed the trajectory"
            );
            let rate = cycles as f64 / w_elapsed;
            println!(
                "  workers {requested} (effective {w_effective}): {w_elapsed:.2} s \
                 ({rate:.2} cycles/s, {:.1} M exchanges/s)",
                w_exchanges as f64 / w_elapsed / 1e6
            );
            report.push(BenchRun {
                label: format!("workers_{requested}"),
                nodes,
                shards,
                workers: w_effective,
                cycles,
                elapsed_s: w_elapsed,
                cycles_per_s: rate,
                exchanges_per_s: w_exchanges as f64 / w_elapsed,
            });
        }
    }

    if args.baseline {
        let mut reference =
            GossipSimulation::try_new(SimulationConfig::averaging(protocol), &values, seed)?;
        let started = Instant::now();
        reference.run(cycles);
        let ref_elapsed = started.elapsed().as_secs_f64();
        let reference_rate = cycles as f64 / ref_elapsed;
        println!(
            "single-threaded reference: {ref_elapsed:.2} s ({reference_rate:.2} cycles/s) — \
             sharded speedup {:.2}x",
            sharded_rate / reference_rate
        );
    }

    report.peak_rss_bytes = bench::peak_rss_bytes();
    // Successive invocations build up one artifact: runs already recorded
    // under other labels (a --full run, the worker sweep) are kept, runs
    // re-measured under the same label are replaced.
    report.merge_into_file(&args.bench_out)?;
    println!("benchmark report written to {}", args.bench_out);

    if let Some(path) = args.assert_baseline {
        let tolerance = env_f64("GOSSIP_BENCH_TOLERANCE", 0.20);
        let committed = BenchReport::load(&path)?
            .ok_or_else(|| format!("{path} is not a bench_sharded_engine/v1 report"))?;
        // The gate compares the freshly measured runs only — merged-in
        // history would trivially pass against itself.
        let failures = bench::regressions(&committed, &report, tolerance);
        for (label, was, now) in &failures {
            eprintln!(
                "REGRESSION {label}: {now:.2} cycles/s vs committed {was:.2} \
                 (tolerance {:.0}%)",
                tolerance * 100.0
            );
        }
        assert!(
            failures.is_empty(),
            "throughput regressed beyond {:.0}% on {} run(s)",
            tolerance * 100.0,
            failures.len()
        );
        println!(
            "regression gate vs {path}: OK (tolerance {:.0}%)",
            tolerance * 100.0
        );
    }

    println!("million_node: OK");
    Ok(())
}
