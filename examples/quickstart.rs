//! Quickstart: compute the global average of a value held by every node of a
//! 10 000-node overlay with anti-entropy gossip, and watch the variance shrink
//! exponentially cycle by cycle.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use epidemic_aggregation::prelude::*;
use rand::SeedableRng;

fn main() -> Result<(), AggregationError> {
    let n = 10_000;
    let mut rng = rand::rngs::StdRng::seed_from_u64(2004);

    // Every node holds a random "load" value; the goal is that every node
    // learns the global average without any coordinator.
    let mut values: Vec<f64> =
        ValueDistribution::Uniform { lo: 0.0, hi: 100.0 }.generate(n, &mut rng);
    let true_average = mean(&values);
    println!("network size          : {n}");
    println!("true average load     : {true_average:.4}");
    println!("initial variance      : {:.4}", variance(&values));
    println!();

    // The deployable pair selection: every node initiates one exchange per
    // cycle with a uniformly random neighbour (here: complete overlay).
    let topology = CompleteTopology::new(n);
    let mut selector = SequentialSelector::new();

    println!(
        "cycle  variance          reduction  (theory: {:.3})",
        theory::seq_rate()
    );
    let reports = run_avg(&mut values, &topology, &mut selector, &mut rng, 15)?;
    for report in &reports {
        println!(
            "{:>5}  {:<16.6e}  {:.3}",
            report.cycle + 1,
            report.variance_after,
            report.reduction_factor().unwrap_or(f64::NAN)
        );
    }

    let worst = values
        .iter()
        .map(|v| (v - true_average).abs())
        .fold(0.0f64, f64::max);
    println!();
    println!(
        "after {} cycles every node knows the average",
        reports.len()
    );
    println!("worst per-node error  : {worst:.6}");
    Ok(())
}
