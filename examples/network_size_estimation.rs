//! Network size estimation under churn — the application of Section 4 /
//! Figure 4 of the paper, at a laptop-friendly scale.
//!
//! A network whose size oscillates ±10 % (plus continuous node turnover) runs
//! the epoch-based anti-entropy counting protocol; at the end of every epoch
//! all nodes that participated in the full epoch know an estimate of the
//! network size as it was when the epoch started.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example network_size_estimation
//! ```

use epidemic_aggregation::prelude::*;

fn main() -> Result<(), SimError> {
    // 5 000 nodes oscillating between 4 500 and 5 500 with 0.1% turnover per
    // cycle; epochs of 30 cycles, 300 cycles total (10 epochs).
    let scenario = SizeEstimationScenario::figure4_scaled(5_000, 300, 42);
    println!("churn schedule        : {:?}", scenario.churn);
    println!("cycles per epoch      : {}", scenario.cycles_per_epoch);
    println!("total cycles          : {}", scenario.total_cycles);
    println!();
    println!("cycle  epoch  actual size  estimate (mean)  [min, max]  reporting nodes");

    let points = scenario.run()?;
    for point in &points {
        println!(
            "{:>5}  {:>5}  {:>11}  {:>15.0}  [{:.0}, {:.0}]  {:>6}",
            point.cycle,
            point.epoch,
            point.actual_size,
            point.estimate_mean,
            point.estimate_min,
            point.estimate_max,
            point.reporting_nodes,
        );
    }

    let tracked: Vec<f64> = points
        .iter()
        .skip(1)
        .map(|p| (p.estimate_mean - p.actual_size as f64).abs() / p.actual_size as f64)
        .collect();
    if !tracked.is_empty() {
        println!();
        println!(
            "mean relative tracking error after the bootstrap epoch: {:.2}%",
            100.0 * tracked.iter().sum::<f64>() / tracked.len() as f64
        );
        println!(
            "(the estimate lags the actual size by roughly one epoch, as in the paper's Figure 4)"
        );
    }
    Ok(())
}
