//! Overlay sweep: the paper's overlay-dependence claim, end to end.
//!
//! Drives the node-level cycle engine through every peer-sampling layer —
//! uniform-complete, static overlay families (random regular, small world,
//! scale free) and a live NEWSCAST membership at several cache sizes — and
//! measures the per-cycle variance-reduction factor of each. The engines
//! realise `GETPAIR_SEQ`, so the uniform reference is 1/(2√e) ≈ 0.3033; the
//! claim under test is that NEWSCAST with cache size `c ≥ 20` stays within
//! ~10 % of it. A frozen NEWSCAST view topology under `GETPAIR_RAND`
//! additionally reproduces the uniform-random rate 1/e ≈ 0.3679.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example overlay_sweep                     # 10⁴ nodes (CI smoke scale)
//! cargo run --release --example overlay_sweep -- --nodes 100000 --shards 4
//! cargo run --release --example overlay_sweep -- --csv sweep.csv  # record the table
//! ```

use epidemic_aggregation::prelude::*;
use gossip_sim::overlay::{newscast_snapshot_factor, overlay_sweep};

fn parse_args() -> (usize, usize, usize, Option<String>) {
    let mut nodes = 10_000usize;
    let mut cycles = 20usize;
    let mut shards = 0usize;
    let mut csv = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--nodes" => nodes = args.next().and_then(|v| v.parse().ok()).unwrap_or(nodes),
            "--cycles" => cycles = args.next().and_then(|v| v.parse().ok()).unwrap_or(cycles),
            "--shards" => shards = args.next().and_then(|v| v.parse().ok()).unwrap_or(shards),
            "--csv" => csv = args.next(),
            other => eprintln!("ignoring unknown argument {other}"),
        }
    }
    (nodes, cycles, shards, csv)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (nodes, cycles, shards, csv) = parse_args();
    let seed = 20040102;
    let engine = if shards == 0 {
        "reference engine".to_string()
    } else {
        format!("sharded engine, {shards} shards")
    };
    println!("overlay_sweep: {nodes} nodes, {cycles} cycles, {engine}");
    println!(
        "GETPAIR_SEQ reference 1/(2*sqrt(e)) = {:.4}; GETPAIR_RAND reference 1/e = {:.4}\n",
        theory::seq_rate(),
        theory::rand_rate()
    );

    let caches = [5usize, 20, 40];
    let (measurements, table) = overlay_sweep(nodes, cycles, &caches, shards, seed)?;
    println!("{table}");
    if let Some(path) = csv {
        table.write_csv(&path)?;
        println!("(wrote {path})");
    }

    // The robustness claim: NEWSCAST with c >= 20 converges within 10 % of
    // the uniform-complete factor measured by the very same engine.
    let uniform = measurements[0].mean_factor;
    assert!(
        (uniform - theory::seq_rate()).abs() < 0.05,
        "uniform factor {uniform} must sit near the SEQ rate"
    );
    for m in &measurements {
        if let SamplerConfig::Newscast { cache_size } = m.sampler {
            let ratio = m.mean_factor / uniform;
            println!(
                "newscast c={cache_size}: factor {:.4} ({ratio:.3}x uniform)",
                m.mean_factor
            );
            if cache_size >= 20 {
                assert!(
                    (ratio - 1.0).abs() < 0.1,
                    "newscast c={cache_size} must stay within 10% of uniform, got {ratio:.3}x"
                );
            }
        }
    }

    // Vector-level cross-check: GETPAIR_RAND over a frozen NEWSCAST overlay
    // (c = 20) reproduces the uniform-random rate within 10 %.
    let snapshot = newscast_snapshot_factor(nodes, 20, 30, 5, seed)?;
    println!(
        "\nnewscast snapshot (c=20), getPair_rand: {:.4} ± {:.4} vs 1/e = {:.4}",
        snapshot.mean,
        snapshot.std_dev,
        theory::rand_rate()
    );
    assert!(
        (snapshot.mean - theory::rand_rate()).abs() / theory::rand_rate() < 0.1,
        "frozen NEWSCAST overlay must reproduce 1/e within 10%, got {}",
        snapshot.mean
    );
    println!("\noverlay sweep OK: NEWSCAST (c>=20) within 10% of uniform on both schedules");
    Ok(())
}
