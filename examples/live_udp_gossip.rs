//! A live deployment on localhost: eight real protocol nodes, each with its
//! own OS thread and UDP socket, gossiping their CPU-load-like metric and
//! converging on the global average — no simulator involved.
//!
//! The simulator-grade knobs plug straight into the live runtime: pass
//! `--sampler newscast` to run live NEWSCAST peer sampling instead of
//! uniform-complete, and `--faults` to execute a small [`FaultPlan`] (10%
//! dead links, 5% message loss) on the UDP path. `--trace <path>` drains
//! every node's flight recorder at shutdown and writes the merged event
//! stream as JSONL for `trace summarize`. The example asserts convergence
//! before exiting, so it doubles as a smoke test:
//!
//! ```text
//! cargo run --release --example live_udp_gossip -- --faults --sampler newscast --trace run.jsonl
//! ```

use epidemic_aggregation::net::{GossipRuntime, NodeEnv, UdpTransport};
use epidemic_aggregation::prelude::*;
use epidemic_aggregation::telemetry::{merge_events, trace};
use gossip_sim::SeedSequence;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

struct Options {
    faults: bool,
    sampler: SamplerConfig,
    trace: Option<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        faults: false,
        sampler: SamplerConfig::UniformComplete,
        trace: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--faults" => options.faults = true,
            "--sampler" => {
                let which = args.next().ok_or("--sampler needs a value")?;
                options.sampler = match which.as_str() {
                    "uniform" => SamplerConfig::UniformComplete,
                    "newscast" => SamplerConfig::newscast(),
                    other => return Err(format!("unknown sampler '{other}'")),
                };
            }
            "--trace" => {
                let path = args.next().ok_or("--trace needs a file path")?;
                options.trace = Some(PathBuf::from(path));
            }
            other => {
                return Err(format!(
                    "unknown argument '{other}' (usage: live_udp_gossip [--faults] \
                     [--sampler uniform|newscast] [--trace <path>])"
                ))
            }
        }
    }
    Ok(options)
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    match run(&options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("FAILED: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(options: &Options) -> Result<(), String> {
    let node_count = 8;
    let loads: Vec<f64> = (0..node_count).map(|i| 10.0 + 10.0 * i as f64).collect();
    let true_average = mean(&loads);

    // Bind one UDP socket per node on an OS-assigned port, then distribute the
    // full address book to everyone (a static bootstrap, standing in for a
    // membership service).
    let mut transports: Vec<UdpTransport> = (0..node_count)
        .map(|i| {
            UdpTransport::bind(
                NodeId::new(i),
                "127.0.0.1:0".parse::<SocketAddr>().expect("valid address"),
                vec![],
            )
            .expect("bind local UDP socket")
        })
        .collect();
    let addresses: Vec<SocketAddr> = transports
        .iter()
        .map(|t| t.local_address().expect("bound socket has an address"))
        .collect();
    for (i, transport) in transports.iter_mut().enumerate() {
        for (j, &address) in addresses.iter().enumerate() {
            if i != j {
                transport.register_peer(NodeId::new(j), address);
            }
        }
    }

    // The exact values a simulator run takes, passed through unchanged.
    let plan = if options.faults {
        FaultPlan {
            link_failure: 0.1,
            ..FaultPlan::with_message_loss(0.05)
        }
    } else {
        FaultPlan::none()
    };

    println!("spawning {node_count} gossip nodes on localhost UDP:");
    for (i, address) in addresses.iter().enumerate() {
        println!("  node {i}: {address}  local load {:.1}", loads[i]);
    }
    println!(
        "true average load: {true_average:.3}   sampler: {:?}   faults: {}",
        options.sampler,
        if plan.is_empty() {
            "none"
        } else {
            "10% dead links + 5% loss"
        }
    );
    println!();

    let protocol = ProtocolConfig::builder()
        .cycle_length_ms(20)
        .cycles_per_epoch(1_000)
        .build()
        .map_err(|e| e.to_string())?;
    let seeds = SeedSequence::new(4_242);
    let runtimes: Vec<GossipRuntime> = transports
        .into_iter()
        .zip(loads.iter())
        .enumerate()
        .map(|(i, (transport, &load))| {
            let telemetry = if options.trace.is_some() {
                TelemetryConfig::trace()
            } else {
                TelemetryConfig::disabled()
            };
            let env = NodeEnv::real(transport, seeds.seed_for_run(i as u64))
                .with_sampler(options.sampler, &seeds)
                .map_err(|e| e.to_string())?
                .with_faults(plan.clone(), &seeds)
                .map_err(|e| e.to_string())?
                .with_telemetry(telemetry);
            Ok(GossipRuntime::spawn_env(env, protocol, load))
        })
        .collect::<Result<_, String>>()?;

    // Watch until the cluster converges (typically well under two seconds,
    // ≈100 cycles); a loaded machine gets up to eight seconds before the
    // run counts as failed.
    let (max_spread, mean_tolerance) = if options.faults {
        (6.0, 0.2)
    } else {
        (1.0, 0.1)
    };
    let mut spread = f64::INFINITY;
    let mut estimates: Vec<f64> = Vec::new();
    for tick in 1..=32 {
        std::thread::sleep(Duration::from_millis(250));
        estimates = runtimes
            .iter()
            .map(|r| r.handle().estimate().unwrap_or(f64::NAN))
            .collect();
        spread = estimates.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - estimates.iter().cloned().fold(f64::INFINITY, f64::min);
        println!(
            "t={:>4}ms  estimates: {}  spread {:.3}",
            tick * 250,
            estimates
                .iter()
                .map(|e| format!("{e:>7.2}"))
                .collect::<Vec<_>>()
                .join(" "),
            spread
        );
        let cluster_mean = mean(&estimates);
        if spread.is_finite()
            && spread <= max_spread
            && (cluster_mean - true_average).abs() <= mean_tolerance * true_average
            && tick >= 8
        {
            break;
        }
    }

    // Each node publishes a periodic MetricsSnapshot through its handle; one
    // final sample per node shows logical progress alongside the estimate.
    println!();
    for (i, runtime) in runtimes.iter().enumerate() {
        let snap = runtime.handle().metrics_snapshot();
        println!(
            "node {i}: cycle {} epoch {} estimate {}",
            snap.cycle,
            snap.epoch,
            snap.estimate
                .map_or_else(|| "-".to_string(), |e| format!("{e:.3}")),
        );
    }

    let mut stats = RuntimeStats::default();
    for runtime in &runtimes {
        stats.merge(runtime.handle().stats());
    }
    if let Some(path) = &options.trace {
        let events = merge_events(runtimes.iter().map(|r| r.handle().drain_trace()));
        std::fs::write(path, trace::to_jsonl(&events))
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!(
            "\nwrote {} trace events to {} (inspect with `cargo run -p gossip-telemetry --bin trace -- summarize {}`)",
            events.len(),
            path.display(),
            path.display(),
        );
    }
    for runtime in runtimes {
        runtime.shutdown();
    }
    println!();
    println!(
        "exchanges: {} started, {} completed, {} timed out, {} vetoed by dead links",
        stats.exchanges_started,
        stats.exchanges_completed,
        stats.exchanges_timed_out,
        stats.exchanges_vetoed
    );
    println!(
        "messages:  {} dropped by the loss model, {} overlapping pushes rejected, \
         {} send / {} recv / {} decode errors",
        stats.messages_lost,
        stats.pushes_rejected,
        stats.send_errors,
        stats.recv_errors,
        stats.decode_errors
    );

    // Convergence assertions — generous under an active fault plan, tight
    // without one — so this example doubles as a CI smoke test.
    if !spread.is_finite() || spread > max_spread {
        return Err(format!("spread {spread:.3} above {max_spread}"));
    }
    let cluster_mean = mean(&estimates);
    if (cluster_mean - true_average).abs() > mean_tolerance * true_average {
        return Err(format!(
            "cluster mean {cluster_mean:.3} too far from true average {true_average:.3}"
        ));
    }
    if stats.exchanges_completed == 0 {
        return Err("no exchange ever completed".to_string());
    }
    if options.faults && stats.messages_lost == 0 && stats.exchanges_vetoed == 0 {
        return Err("fault plan was active but never fired".to_string());
    }
    println!("every node converged to ≈{true_average:.2} using nothing but UDP push–pull gossip");
    Ok(())
}
