//! A live deployment on localhost: eight real protocol nodes, each with its
//! own OS thread and UDP socket, gossiping their CPU-load-like metric and
//! converging on the global average — no simulator involved.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example live_udp_gossip
//! ```

use epidemic_aggregation::net::{GossipRuntime, UdpTransport};
use epidemic_aggregation::prelude::*;
use std::net::SocketAddr;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let node_count = 8;
    let loads: Vec<f64> = (0..node_count).map(|i| 10.0 + 10.0 * i as f64).collect();
    let true_average = mean(&loads);

    // Bind one UDP socket per node on an OS-assigned port, then distribute the
    // full address book to everyone (a static bootstrap, standing in for a
    // membership service).
    let mut transports: Vec<UdpTransport> = (0..node_count)
        .map(|i| {
            UdpTransport::bind(
                NodeId::new(i),
                "127.0.0.1:0".parse::<SocketAddr>().expect("valid address"),
                vec![],
            )
            .expect("bind local UDP socket")
        })
        .collect();
    let addresses: Vec<SocketAddr> = transports
        .iter()
        .map(|t| t.local_address().expect("bound socket has an address"))
        .collect();
    for (i, transport) in transports.iter_mut().enumerate() {
        for (j, &address) in addresses.iter().enumerate() {
            if i != j {
                transport.register_peer(NodeId::new(j), address);
            }
        }
    }

    println!("spawning {node_count} gossip nodes on localhost UDP:");
    for (i, address) in addresses.iter().enumerate() {
        println!("  node {i}: {address}  local load {:.1}", loads[i]);
    }
    println!("true average load: {true_average:.3}");
    println!();

    let protocol = ProtocolConfig::builder()
        .cycle_length_ms(20)
        .cycles_per_epoch(1_000)
        .build()?;
    let runtimes: Vec<GossipRuntime> = transports
        .into_iter()
        .zip(loads.iter())
        .enumerate()
        .map(|(i, (transport, &load))| GossipRuntime::spawn(transport, protocol, load, i as u64))
        .collect();

    // Watch convergence for two seconds (≈100 cycles).
    for tick in 1..=8 {
        std::thread::sleep(Duration::from_millis(250));
        let estimates: Vec<f64> = runtimes
            .iter()
            .map(|r| r.handle().estimate().unwrap_or(f64::NAN))
            .collect();
        let spread = estimates.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - estimates.iter().cloned().fold(f64::INFINITY, f64::min);
        println!(
            "t={:>4}ms  estimates: {}  spread {:.3}",
            tick * 250,
            estimates
                .iter()
                .map(|e| format!("{e:>7.2}"))
                .collect::<Vec<_>>()
                .join(" "),
            spread
        );
    }

    for runtime in runtimes {
        runtime.shutdown();
    }
    println!();
    println!("every node converged to ≈{true_average:.2} using nothing but UDP push–pull gossip");
    Ok(())
}
