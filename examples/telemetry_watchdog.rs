//! CI telemetry smoke: a traced 10 000-node fault scenario whose convergence
//! stall the watchdog must diagnose online.
//!
//! The run converges healthily for ten cycles, then an *unhealed* partition
//! splits off 30% of the nodes. Each side keeps averaging internally, so the
//! two sides settle on slightly different sample means and the **global**
//! variance plateaus well above the convergence floor: the per-cycle
//! variance-reduction factor climbs from the paper's ≈ 1/(2√e) toward 1, and
//! the [`ConvergenceWatchdog`] flips its verdict from `converging` to
//! `stalled`. The example asserts that exact diagnosis trajectory — a
//! `converging` verdict before the split, a `stalled` verdict after — and
//! exits nonzero otherwise, so a watchdog regression fails the pipeline.
//!
//! The flight recorder runs at full tracing throughout; the ring is drained
//! every cycle (10k nodes emit ~20k events/cycle, more than one ring) and
//! streamed to `--jsonl <path>` for the CI artifact:
//!
//! ```text
//! cargo run --release --example telemetry_watchdog -- --jsonl target/watchdog_trace.jsonl
//! ```

use epidemic_aggregation::prelude::*;
use epidemic_aggregation::telemetry::trace;
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    nodes: usize,
    cycles: usize,
    jsonl: Option<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        nodes: 10_000,
        cycles: 55,
        jsonl: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--nodes" => {
                let v = args.next().ok_or("--nodes needs a value")?;
                options.nodes = v.parse().map_err(|e| format!("--nodes: {e}"))?;
            }
            "--cycles" => {
                let v = args.next().ok_or("--cycles needs a value")?;
                options.cycles = v.parse().map_err(|e| format!("--cycles: {e}"))?;
            }
            "--jsonl" => {
                let v = args.next().ok_or("--jsonl needs a file path")?;
                options.jsonl = Some(PathBuf::from(v));
            }
            other => {
                return Err(format!(
                    "unknown argument '{other}' (usage: telemetry_watchdog \
                     [--nodes N] [--cycles N] [--jsonl <path>])"
                ))
            }
        }
    }
    Ok(options)
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    match run(&options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("FAILED: {message}");
            ExitCode::FAILURE
        }
    }
}

const SPLIT_AT_CYCLE: usize = 10;

fn run(options: &Options) -> Result<(), String> {
    let values: Vec<f64> = (0..options.nodes).map(|i| (i % 101) as f64).collect();
    // One long epoch: an epoch restart would re-seed the aggregation and the
    // variance jump would (correctly, but distractingly) read as divergence.
    let protocol = ProtocolConfig::builder()
        .cycles_per_epoch((options.cycles + 1) as u32)
        .build()
        .map_err(|e| e.to_string())?;
    let plan = FaultPlan {
        partitions: vec![PartitionWindow {
            split_at_cycle: SPLIT_AT_CYCLE,
            heal_at_cycle: usize::MAX,
            minority_fraction: 0.3,
        }],
        ..FaultPlan::none()
    };
    let mut sim =
        GossipSimulation::with_faults(SimulationConfig::averaging(protocol), &values, 4_242, plan)
            .map_err(|e| e.to_string())?;
    sim.set_telemetry(TelemetryConfig::full());

    let mut jsonl = match &options.jsonl {
        Some(path) => Some(
            std::fs::File::create(path)
                .map(std::io::BufWriter::new)
                .map_err(|e| format!("creating {}: {e}", path.display()))?,
        ),
        None => None,
    };

    println!(
        "tracing {} nodes for {} cycles; unhealed 30% partition at cycle {SPLIT_AT_CYCLE}",
        options.nodes, options.cycles
    );
    let mut events_written: u64 = 0;
    let mut saw_converging = false;
    for _ in 0..options.cycles {
        let summary = sim.run_cycle();
        let verdict = sim
            .watchdog_verdict()
            .ok_or("watchdog must be armed under TelemetryConfig::full()")?;
        if verdict.tag() == "converging" {
            saw_converging = true;
        }
        println!(
            "cycle {:>3}  variance {:>12.6e}  verdict: {verdict}",
            summary.cycle, summary.estimate_variance
        );
        // Drain every cycle: the ring holds one cycle comfortably, the whole
        // run does not. Batches are cycle-ordered, so appending them keeps
        // the file in canonical merge order.
        let batch = sim.drain_trace();
        events_written += batch.len() as u64;
        if let Some(writer) = jsonl.as_mut() {
            writer
                .write_all(trace::to_jsonl(&batch).as_bytes())
                .map_err(|e| e.to_string())?;
        }
    }
    if let Some(mut writer) = jsonl.take() {
        writer.flush().map_err(|e| e.to_string())?;
    }

    println!();
    println!(
        "{events_written} events recorded ({} dropped)",
        sim.dropped_trace_events()
    );
    for diagnosis in sim.watchdog_diagnoses() {
        println!(
            "diagnosis at cycle {:>3}: {}",
            diagnosis.cycle, diagnosis.verdict
        );
    }
    if let Some(path) = &options.jsonl {
        println!("trace written to {}", path.display());
    }

    // The assertions CI rides on: healthy convergence first, the stall
    // diagnosed after the split, and no event silently dropped.
    if sim.dropped_trace_events() != 0 {
        return Err(format!(
            "{} events dropped — per-cycle draining must keep the ring bounded",
            sim.dropped_trace_events()
        ));
    }
    if !saw_converging {
        return Err("watchdog never diagnosed the healthy phase as converging".to_string());
    }
    let final_verdict = sim
        .watchdog_verdict()
        .ok_or("watchdog must be armed under TelemetryConfig::full()")?;
    if final_verdict.tag() != "stalled" {
        return Err(format!(
            "expected a stalled verdict after the unhealed partition, got: {final_verdict}"
        ));
    }
    let stall = sim
        .watchdog_diagnoses()
        .iter()
        .find(|d| d.verdict.tag() == "stalled")
        .ok_or("no stall transition was logged")?;
    if (stall.cycle as usize) < SPLIT_AT_CYCLE {
        return Err(format!(
            "stall diagnosed at cycle {} — before the partition at {SPLIT_AT_CYCLE}",
            stall.cycle
        ));
    }
    if events_written == 0 {
        return Err("no events were recorded".to_string());
    }
    println!(
        "\nwatchdog correctly diagnosed the partition stall at cycle {} (verdict: {final_verdict})",
        stall.cycle
    );
    Ok(())
}
