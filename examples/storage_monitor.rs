//! A distributed-storage monitoring dashboard: the motivating use case from
//! the paper's introduction ("the total amount of free space in a distributed
//! storage", "the identity of the most powerful peer in a grid").
//!
//! Several aggregation instances run concurrently over the same simulated
//! overlay — average free space, second moment (for the variance), minimum,
//! maximum and a counting instance for the network size — and their converged
//! outputs are combined into a single statistics bundle.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example storage_monitor
//! ```

use epidemic_aggregation::core::aggregate::AggregateKind;
use epidemic_aggregation::core::derived::NetworkStatistics;
use epidemic_aggregation::prelude::*;
use rand::SeedableRng;

/// Runs one aggregate over the whole network and returns the converged value
/// (they all converge to the same number at every node, so node 0's estimate
/// is as good as any).
fn run_aggregate(
    kind: AggregateKind,
    free_space_gb: &[f64],
    cycles: usize,
    seed: u64,
) -> Result<f64, AggregationError> {
    let n = free_space_gb.len();
    let topology = CompleteTopology::new(n);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut selector = SequentialSelector::new();
    let mut states: Vec<f64> = free_space_gb.iter().map(|&v| kind.init_value(v)).collect();
    for cycle in 0..cycles {
        aggregate_core::avg::run_cycle_with(
            &mut states,
            &topology,
            &mut selector,
            kind.instantiate().as_ref(),
            &mut rng,
            cycle,
        )?;
    }
    Ok(kind.estimate_value(states[0]))
}

fn main() -> Result<(), AggregationError> {
    let n = 2_000;
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    // Free disk space per storage node, in GB: a skewed population with a few
    // nearly-full nodes and a few huge ones.
    let free_space_gb: Vec<f64> = ValueDistribution::Gaussian {
        mean: 500.0,
        std_dev: 150.0,
    }
    .generate(n, &mut rng)
    .into_iter()
    .map(|v| v.clamp(1.0, 2_000.0))
    .collect();

    let cycles = 30;
    let avg = run_aggregate(AggregateKind::Average, &free_space_gb, cycles, 100)?;
    let second_moment = run_aggregate(
        AggregateKind::Moment { order: 2 },
        &free_space_gb,
        cycles,
        101,
    )?;
    let min = run_aggregate(AggregateKind::Minimum, &free_space_gb, cycles, 102)?;
    let max = run_aggregate(AggregateKind::Maximum, &free_space_gb, cycles, 103)?;

    // Network size via anti-entropy counting: node 0 is the leader (1.0),
    // everyone else starts from 0.0; the converged average is 1/N.
    let mut counting: Vec<f64> = vec![0.0; n];
    counting[0] = 1.0;
    let topology = CompleteTopology::new(n);
    let mut selector = SequentialSelector::new();
    let mut count_rng = rand::rngs::StdRng::seed_from_u64(104);
    run_avg(
        &mut counting,
        &topology,
        &mut selector,
        &mut count_rng,
        cycles,
    )?;
    let count_average = counting[0];

    let stats = NetworkStatistics::from_estimates(avg, second_moment, min, max, count_average);

    println!("=== distributed storage dashboard (computed by gossip, no coordinator) ===");
    println!(
        "estimated node count      : {:>12.0}   (actual {n})",
        stats.size
    );
    println!("average free space        : {:>12.1} GB", stats.mean);
    println!(
        "std deviation             : {:>12.1} GB",
        stats.variance.sqrt()
    );
    println!("smallest free space       : {:>12.1} GB", stats.min);
    println!("largest free space        : {:>12.1} GB", stats.max);
    println!(
        "estimated total capacity  : {:>12.1} TB",
        stats.sum / 1_000.0
    );

    let true_total: f64 = free_space_gb.iter().sum();
    println!(
        "actual total capacity     : {:>12.1} TB",
        true_total / 1_000.0
    );
    println!(
        "relative error on the total: {:>11.3}%",
        100.0 * (stats.sum - true_total).abs() / true_total
    );
    Ok(())
}
