//! Robustness demonstration: how the averaging protocol behaves under message
//! loss, a correlated crash and continuous churn, using the full
//! protocol-level simulator (epochs, joins, departures) — including the
//! paper's Figure 4 oscillating-churn workload driven through the
//! slot-reclaiming arena engine.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example churn_resilience            # scaled Figure 4 (1k nodes)
//! cargo run --release --example churn_resilience -- --full  # full scale (90k–110k nodes)
//! ```

use epidemic_aggregation::prelude::*;

fn scenario(label: &str, conditions: NetworkConditions, crash_cycle: Option<usize>) {
    let n = 2_000;
    let cycles = 25;
    let values: Vec<f64> = (0..n).map(|i| (i % 100) as f64).collect();

    let protocol = ProtocolConfig::builder()
        .cycles_per_epoch(cycles as u32 + 1)
        .build()
        .expect("valid config");
    let config = SimulationConfig {
        protocol,
        conditions,
        leader_policy: None,
        sampler: SamplerConfig::UniformComplete,
        redundancy: None,
    };
    let mut sim = GossipSimulation::new(config, &values, 99);

    for cycle in 0..cycles {
        if Some(cycle) == crash_cycle {
            let victims = sim.live_count() / 4;
            sim.remove_random_nodes(victims);
        }
        sim.run_cycle();
    }

    let estimates = sim.estimates();
    let surviving_truth = mean(&sim.local_values());
    let worst = estimates
        .iter()
        .map(|e| (e - surviving_truth).abs())
        .fold(0.0f64, f64::max);
    println!(
        "{label:<42} survivors {:>5}  final variance {:>10.3e}  worst error vs surviving avg {:>7.3}",
        sim.live_count(),
        variance(&estimates),
        worst
    );
}

/// Runs the Figure 4 churn scenario through [`ChurnRunner`] and prints the
/// engine-health telemetry: estimation accuracy, throughput and the arena's
/// resident-slot high-water mark (which the free list keeps bounded).
fn figure4_churn(full_scale: bool) {
    let (label, scenario) = if full_scale {
        (
            "Figure 4, full scale (90k-110k nodes)",
            SizeEstimationScenario::figure4(99),
        )
    } else {
        (
            "Figure 4, scaled (900-1100 nodes)",
            SizeEstimationScenario::figure4_scaled(1_000, 1_000, 99),
        )
    };
    println!(
        "{label}: oscillating size, {} joins + departures of fluctuation per cycle,",
        scenario.churn.fluctuation_per_cycle
    );
    println!(
        "{} cycles in epochs of {} — sustained churn, so a leaky node arena would grow forever.",
        scenario.total_cycles, scenario.cycles_per_epoch
    );

    let report = ChurnRunner::new(scenario).run().expect("valid scenario");

    let slot_bound = scenario.churn.max_size + 2 * scenario.churn.fluctuation_per_cycle;
    println!(
        "  {} cycles in {:.1} s  ({:.1} cycles/s)",
        report.cycles, report.elapsed_seconds, report.cycles_per_second
    );
    println!(
        "  churn applied: {} joins, {} departures  (peak {} live nodes)",
        report.total_joins, report.total_departures, report.peak_live_nodes
    );
    println!(
        "  node arena: peak {} resident slots  (bound: max_size + 2*fluctuation = {})",
        report.peak_slot_capacity, slot_bound
    );
    if let Some(error) = report.mean_tracking_error() {
        println!(
            "  size estimate tracks the true size within {:.2}% on average over {} epochs",
            error * 100.0,
            report.points.len().saturating_sub(1)
        );
    }
    assert!(
        report.peak_slot_capacity <= slot_bound,
        "arena leaked beyond its bound"
    );
    println!();
}

fn main() {
    let full_scale = std::env::args().any(|arg| arg == "--full");
    figure4_churn(full_scale);

    println!("averaging over 2000 nodes, 25 cycles, values 0..99 (true average 49.5)");
    println!();
    scenario(
        "baseline (reliable network)",
        NetworkConditions::reliable(),
        None,
    );
    scenario(
        "10% message loss",
        NetworkConditions::with_message_loss(0.10),
        None,
    );
    scenario(
        "40% message loss",
        NetworkConditions::with_message_loss(0.40),
        None,
    );
    scenario(
        "25% of nodes crash at cycle 5",
        NetworkConditions::reliable(),
        Some(5),
    );
    scenario(
        "25% crash at cycle 5 + 20% message loss",
        NetworkConditions::with_message_loss(0.20),
        Some(5),
    );
    println!();
    println!("message loss only slows convergence; crashes bias the result towards the mass");
    println!("the crashed nodes held, until the next epoch restarts the aggregation.");
}
