//! Robustness demonstration: how the averaging protocol behaves under message
//! loss, a correlated crash and continuous churn, using the full
//! protocol-level simulator (epochs, joins, departures).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example churn_resilience
//! ```

use epidemic_aggregation::prelude::*;

fn scenario(label: &str, conditions: NetworkConditions, crash_cycle: Option<usize>) {
    let n = 2_000;
    let cycles = 25;
    let values: Vec<f64> = (0..n).map(|i| (i % 100) as f64).collect();

    let protocol = ProtocolConfig::builder()
        .cycles_per_epoch(cycles as u32 + 1)
        .build()
        .expect("valid config");
    let config = SimulationConfig {
        protocol,
        conditions,
        leader_policy: None,
    };
    let mut sim = GossipSimulation::new(config, &values, 99);

    for cycle in 0..cycles {
        if Some(cycle) == crash_cycle {
            let victims = sim.live_count() / 4;
            sim.remove_random_nodes(victims);
        }
        sim.run_cycle();
    }

    let estimates = sim.estimates();
    let surviving_truth = mean(&sim.local_values());
    let worst = estimates
        .iter()
        .map(|e| (e - surviving_truth).abs())
        .fold(0.0f64, f64::max);
    println!(
        "{label:<42} survivors {:>5}  final variance {:>10.3e}  worst error vs surviving avg {:>7.3}",
        sim.live_count(),
        variance(&estimates),
        worst
    );
}

fn main() {
    println!("averaging over 2000 nodes, 25 cycles, values 0..99 (true average 49.5)");
    println!();
    scenario(
        "baseline (reliable network)",
        NetworkConditions::reliable(),
        None,
    );
    scenario(
        "10% message loss",
        NetworkConditions::with_message_loss(0.10),
        None,
    );
    scenario(
        "40% message loss",
        NetworkConditions::with_message_loss(0.40),
        None,
    );
    scenario(
        "25% of nodes crash at cycle 5",
        NetworkConditions::reliable(),
        Some(5),
    );
    scenario(
        "25% crash at cycle 5 + 20% message loss",
        NetworkConditions::with_message_loss(0.20),
        Some(5),
    );
    println!();
    println!("message loss only slows convergence; crashes bias the result towards the mass");
    println!("the crashed nodes held, until the next epoch restarts the aggregation.");
}
