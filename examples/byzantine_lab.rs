//! Byzantine adversary lab: stateful value attacks against the averaging
//! protocol, leader capture against the counting protocol, and the paper's
//! multiple-instances mitigation measured as a defense curve.
//!
//! Three acts:
//!
//! 1. **Stateful value attacks** — a colluding fraction re-asserts a lie at
//!    every cycle (mass inflation), so unlike the one-shot `ValueInjection`
//!    the protocol can never dilute it away; oscillation and drift variants
//!    show the consensus value tracking the attacker.
//! 2. **Leader capture** — the adversary captures the counting-instance
//!    leaders of an epoch and forces their instances to a false state; an
//!    undefended single-instance estimate becomes arbitrarily wrong.
//! 3. **Median-of-k defense** — `k` redundant concurrent instances per
//!    epoch with per-node median merge: with `f < k/2` captured leaders the
//!    median sits on an honest instance and the estimate error stays
//!    bounded. The bound is *asserted*, not just printed: the defended
//!    error must stay ≤ 10 % while the undefended run diverges ≥ 5×.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example byzantine_lab                    # 10⁴ nodes (CI smoke scale)
//! cargo run --release --example byzantine_lab -- --nodes 2000
//! cargo run --release --example byzantine_lab -- --csv byzantine.csv
//! ```
//!
//! Exits nonzero when any defense bound is violated (the adversarial-smoke
//! CI job runs exactly this binary).

use epidemic_aggregation::prelude::*;
use gossip_sim::robustness::{attack_defense_sweep, attack_defense_table};

fn parse_args() -> (usize, Option<String>) {
    let mut nodes = 10_000usize;
    let mut csv = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--nodes" => nodes = args.next().and_then(|v| v.parse().ok()).unwrap_or(nodes),
            "--csv" => csv = args.next(),
            other => eprintln!("ignoring unknown argument {other}"),
        }
    }
    (nodes, csv)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (nodes, csv) = parse_args();
    let seed = 20040102;
    let cycles_per_epoch = 30u32;
    println!("byzantine_lab: {nodes} nodes, {cycles_per_epoch} cycles per epoch\n");

    // ---- Act 1: stateful value attacks on the averaging protocol ----
    let protocol = ProtocolConfig::builder()
        .cycles_per_epoch(cycles_per_epoch * 4)
        .build()?;
    let config = SimulationConfig::averaging(protocol);
    let values = vec![1.0; nodes];
    for (label, strategy) in [
        ("mass-inflation", AttackStrategy::FixedLie { value: 100.0 }),
        (
            "oscillation",
            AttackStrategy::Oscillate {
                center: 1.0,
                amplitude: 50.0,
                period: 10,
            },
        ),
        (
            "drift",
            AttackStrategy::Drift {
                start: 1.0,
                rate: 2.0,
            },
        ),
    ] {
        let plan = AdversaryPlan::with_strategy(0.05, strategy);
        let mut sim =
            GossipSimulation::with_adversary(config, &values, seed, FaultPlan::none(), plan)?;
        let colluders = sim.adversary().colluders().len();
        let last = sim.run(30).pop().expect("30 cycles requested");
        println!(
            "{label}: {colluders} colluders (5%), consensus mean after 30 cycles {:.2} \
             (honest mean 1.00)",
            last.estimate_mean
        );
        assert!(
            (last.estimate_mean - 1.0).abs() > 1.0,
            "{label}: a stateful 5% collusion must displace the mean, got {}",
            last.estimate_mean
        );
    }

    // ---- Acts 2 + 3: leader capture vs the median-of-k defense ----
    let (k, f) = (5usize, 2usize);
    let amplitudes = [2.0, 5.0, 20.0, 100.0];
    println!("\nleader capture ({f} of {k} instances) vs median-of-{k} defense:");
    let points = attack_defense_sweep(nodes, cycles_per_epoch, k, f, &amplitudes, seed)?;
    let table = attack_defense_table(&points);
    println!("{table}");
    if let Some(path) = csv {
        table.write_csv(&path)?;
        println!("(wrote {path})");
    }

    // ---- The defense bounds, asserted (nonzero exit on violation) ----
    for point in &points {
        assert!(
            point.defended_error <= 0.10,
            "amplitude {}: median-of-{k} error {} exceeds the 10% bound",
            point.reported_state,
            point.defended_error
        );
        assert!(
            point.undefended_error >= 5.0 * point.defended_error.max(0.01),
            "amplitude {}: undefended error {} should diverge ≥5× past the defended {}",
            point.reported_state,
            point.undefended_error,
            point.defended_error
        );
    }
    println!(
        "byzantine lab OK: median-of-{k} holds every estimate within 10% under {f} captured \
         leaders; the undefended estimator diverges ≥5×"
    );
    Ok(())
}
