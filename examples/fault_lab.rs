//! Fault-injection lab: the paper's Section 4 robustness experiments, end
//! to end.
//!
//! Sweeps the cycle engine through the fault families of `gossip-faults`
//! and measures how the convergence factor degrades:
//!
//! * persistent link failures at probability {0, 0.05, 0.1, 0.2};
//! * uniform message omission at the same rates;
//! * an adversarial value injection corrupting 5 % / 10 % of the nodes;
//! * a network partition that splits at cycle 0 and heals at cycle 10;
//! * correlated crash bursts at the start of a counting epoch
//!   (size-estimation error vs crash rate).
//!
//! The graceful-degradation claim is asserted, not just printed: with 20 %
//! of links dead the factor must stay below 0.55 (fault-free: 1/(2√e) ≈
//! 0.303) and the protocol must still converge.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example fault_lab                     # 10⁴ nodes (CI smoke scale)
//! cargo run --release --example fault_lab -- --nodes 100000 --shards 4
//! cargo run --release --example fault_lab -- --csv faults.csv # record the curves
//! ```

use epidemic_aggregation::prelude::*;
use gossip_sim::robustness::{crash_estimation_curve, crash_table, sweep_table};

fn parse_args() -> (usize, usize, usize, Option<String>) {
    let mut nodes = 10_000usize;
    let mut cycles = 20usize;
    let mut shards = 0usize;
    let mut csv = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--nodes" => nodes = args.next().and_then(|v| v.parse().ok()).unwrap_or(nodes),
            "--cycles" => cycles = args.next().and_then(|v| v.parse().ok()).unwrap_or(cycles),
            "--shards" => shards = args.next().and_then(|v| v.parse().ok()).unwrap_or(shards),
            "--csv" => csv = args.next(),
            other => eprintln!("ignoring unknown argument {other}"),
        }
    }
    (nodes, cycles, shards, csv)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (nodes, cycles, shards, csv) = parse_args();
    let seed = 20040102;
    let engine = if shards == 0 {
        "reference engine".to_string()
    } else {
        format!("sharded engine, {shards} shards")
    };
    println!("fault_lab: {nodes} nodes, {cycles} cycles, {engine}");
    println!(
        "fault-free GETPAIR_SEQ reference 1/(2*sqrt(e)) = {:.4}\n",
        theory::seq_rate()
    );

    let sweep = RobustnessSweep {
        nodes,
        cycles,
        shards,
        seed,
    };
    let rates = [0.0, 0.05, 0.1, 0.2];

    // Convergence factor vs link-failure probability (Section 4 axis 1).
    let link_points = sweep.link_failure_curve(&rates)?;
    // Convergence factor vs message-omission probability (axis 2).
    let loss_points = sweep.loss_curve(&rates)?;
    // Mean displacement vs adversarially corrupted fraction (beyond the
    // paper: the value-injection adversary).
    let injection_points = sweep.injection_curve(&[0.05, 0.1], 100.0)?;

    let mut table = sweep_table(&link_points);
    table.append(&sweep_table(&loss_points));
    table.append(&sweep_table(&injection_points));
    println!("{table}");

    // Partition demo: split at cycle 0, heal at cycle 10, then re-converge.
    let partition_demo = sweep.measure(
        "partition-0-10",
        0.5,
        FaultPlan::with_partition(0, cycles.min(10), 0.5),
    )?;
    println!(
        "partition (heals at cycle {}): final variance {:.3e}, {} exchanges blocked",
        cycles.min(10),
        partition_demo.final_variance,
        partition_demo.exchanges_blocked
    );

    // Size-estimation error vs crash rate at the start of an epoch. The
    // counting protocol is epoch-bound, so this runs at a fixed moderate
    // scale regardless of the sweep size.
    let crash_nodes = nodes.min(10_000);
    let crash_points = crash_estimation_curve(crash_nodes, 30, &rates, seed)?;
    let crash = crash_table(&crash_points);
    println!("\nsize-estimation error vs crash rate at epoch start ({crash_nodes} nodes):");
    println!("{crash}");

    if let Some(path) = csv {
        table.write_csv(&path)?;
        println!("(wrote {path})");
    }

    // ---- The graceful-degradation bounds, asserted ----
    let baseline = link_points[0].mean_factor;
    assert!(
        (baseline - theory::seq_rate()).abs() < 0.05,
        "fault-free factor {baseline} must sit near the SEQ rate"
    );
    for point in link_points.iter().chain(&loss_points) {
        println!(
            "{} {:.2}: factor {:.4} ({:.3}x theory), final variance {:.3e}",
            point.fault,
            point.rate,
            point.mean_factor,
            point.ratio_to_seq_rate(),
            point.final_variance
        );
        assert!(
            point.mean_factor < 0.7,
            "{} at rate {} must still contract the variance each cycle, got {}",
            point.fault,
            point.rate,
            point.mean_factor
        );
        assert!(
            point.final_variance < 1e-2,
            "{} at rate {} must still converge, variance {}",
            point.fault,
            point.rate,
            point.final_variance
        );
    }
    let worst_links = link_points.last().unwrap();
    assert!(
        worst_links.mean_factor < 0.55,
        "20% dead links: factor {} exceeds the graceful-degradation bound",
        worst_links.mean_factor
    );
    assert!(
        worst_links.mean_drift < 1e-6,
        "dead links must not displace the mean (drift {})",
        worst_links.mean_drift
    );
    assert!(
        partition_demo.final_variance < 1e-3,
        "a healed partition must re-converge, variance {}",
        partition_demo.final_variance
    );
    // Crash bursts at epoch start bias that epoch's count upward, but the
    // estimator must neither wedge nor explode.
    for point in &crash_points {
        assert!(
            point.estimate_mean.is_finite() && point.estimate_mean > 0.0,
            "crash rate {}: estimate must stay usable",
            point.crash_fraction
        );
        assert!(
            point.relative_error < 1.5,
            "crash rate {}: size-estimate error {} out of bounds",
            point.crash_fraction,
            point.relative_error
        );
    }
    println!("\nfault lab OK: graceful degradation holds across every fault family");
    Ok(())
}
